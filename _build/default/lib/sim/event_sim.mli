(** Event-driven gate-level simulation with transition counting.

    The measurement instrument behind the glitching experiments (§III.A.2):
    under a real (non-zero) delay model, unequal path delays cause nodes to
    make {e spurious transitions} — several toggles within one clock cycle
    before settling.  The simulator counts, per node, both total transitions
    and {e functional} transitions (settled-value changes, i.e. what a
    zero-delay simulation would see); the difference is glitch power.

    Transport-delay semantics: every scheduled evaluation re-reads current
    fanin values at its own timestamp, so pulses propagate and glitches are
    not filtered. *)

type delay_model =
  | Zero_delay      (** all gates switch instantly: no glitches by construction *)
  | Unit_delay      (** every gate has delay 1 *)
  | Node_delays     (** use each node's [Network.delay] annotation *)

type result = {
  total : (Network.id, int) Hashtbl.t;
      (** transitions per node over the whole stream *)
  functional : (Network.id, int) Hashtbl.t;
      (** settled-value changes per node *)
  cycles : int;  (** number of vector-to-vector steps simulated *)
}

val run : Network.t -> delay_model -> Stimulus.t -> result
(** Apply the vector stream, one vector per clock period (chosen longer than
    the critical path so the circuit always settles).  Raises
    [Invalid_argument] on arity mismatch or an empty stream. *)

val node_activity : result -> Network.id -> float
(** Average total transitions per cycle of one node. *)

val total_transitions : result -> int
val functional_transitions : result -> int

val spurious_fraction : result -> float
(** (total - functional) / total — the paper's "10% to 40%" quantity. *)

val switched_capacitance : Network.t -> result -> float
(** Capacitance-weighted total transitions per cycle. *)

val energy : Lowpower.Power_model.params -> Network.t -> result -> float
(** Switching energy in joules for the whole simulated stream, treating node
    [cap] annotations as farads. *)
