type delay_model = Zero_delay | Unit_delay | Node_delays

type result = {
  total : (Network.id, int) Hashtbl.t;
  functional : (Network.id, int) Hashtbl.t;
  cycles : int;
}

module Event = struct
  type t = float * int (* time, node id *)

  let compare (ta, na) (tb, nb) =
    match Float.compare ta tb with 0 -> compare na nb | c -> c
end

module Queue_ = Set.Make (Event)

let bump tbl i by =
  let c = Option.value (Hashtbl.find_opt tbl i) ~default:0 in
  Hashtbl.replace tbl i (c + by)

let run net model stream =
  (match stream with
  | [] -> invalid_arg "Event_sim.run: empty stimulus"
  | v :: _ ->
    if Array.length v <> List.length (Network.inputs net) then
      invalid_arg "Event_sim.run: input arity mismatch");
  let order = Network.topo_order net in
  let ins = Network.inputs net in
  (* Fanout lists, one pass. *)
  let fanout_of = Hashtbl.create 64 in
  List.iter
    (fun i ->
      if not (Network.is_input net i) then
        List.iter
          (fun j ->
            let l = Option.value (Hashtbl.find_opt fanout_of j) ~default:[] in
            Hashtbl.replace fanout_of j (i :: l))
          (Network.fanins net i))
    order;
  let fanouts j = Option.value (Hashtbl.find_opt fanout_of j) ~default:[] in
  let gate_delay i =
    match model with
    | Zero_delay -> 0.0
    | Unit_delay -> 1.0
    | Node_delays -> max 1.0e-9 (Network.delay net i)
  in
  let value = Hashtbl.create 64 in
  let settled = Hashtbl.create 64 in
  let total = Hashtbl.create 64 and functional = Hashtbl.create 64 in
  let eval_node i =
    let fanin_vals =
      Array.of_list
        (List.map (fun j -> Hashtbl.find value j) (Network.fanins net i))
    in
    Expr.eval (fun v -> fanin_vals.(v)) (Network.func net i)
  in
  (* Initialize from the first vector with zero-delay settling (no
     transitions are charged for initialization). *)
  let first = List.hd stream in
  List.iteri (fun k i -> Hashtbl.replace value i first.(k)) ins;
  List.iter
    (fun i ->
      if not (Network.is_input net i) then Hashtbl.replace value i (eval_node i))
    order;
  Hashtbl.iter (fun i v -> Hashtbl.replace settled i v) value;
  let apply_vector_zero_delay vec =
    (* Functional reference: settled values under zero delay. *)
    List.iteri (fun k i -> Hashtbl.replace settled i vec.(k)) ins;
    List.iter
      (fun i ->
        if not (Network.is_input net i) then begin
          let fanin_vals =
            Array.of_list
              (List.map (fun j -> Hashtbl.find settled j) (Network.fanins net i))
          in
          let v = Expr.eval (fun k -> fanin_vals.(k)) (Network.func net i) in
          let old = Hashtbl.find settled i in
          if v <> old then begin
            Hashtbl.replace settled i v;
            bump functional i 1
          end
        end)
      order
  in
  let apply_vector_event vec =
    let queue = ref Queue_.empty in
    let schedule t i = queue := Queue_.add (t, i) !queue in
    List.iteri
      (fun k i ->
        if Hashtbl.find value i <> vec.(k) then begin
          Hashtbl.replace value i vec.(k);
          bump total i 1;
          List.iter (fun j -> schedule (gate_delay j) j) (fanouts i)
        end)
      ins;
    let rec drain () =
      match Queue_.min_elt_opt !queue with
      | None -> ()
      | Some ((t, i) as ev) ->
        queue := Queue_.remove ev !queue;
        let v = eval_node i in
        if v <> Hashtbl.find value i then begin
          Hashtbl.replace value i v;
          bump total i 1;
          List.iter (fun j -> schedule (t +. gate_delay j) j) (fanouts i)
        end;
        drain ()
    in
    drain ()
  in
  let apply_vector vec =
    (match model with
    | Zero_delay ->
      (* Same pass provides both counts. *)
      List.iteri
        (fun k i ->
          if Hashtbl.find value i <> vec.(k) then begin
            Hashtbl.replace value i vec.(k);
            bump total i 1
          end)
        ins;
      List.iter
        (fun i ->
          if not (Network.is_input net i) then begin
            let v = eval_node i in
            if v <> Hashtbl.find value i then begin
              Hashtbl.replace value i v;
              bump total i 1
            end
          end)
        order
    | Unit_delay | Node_delays ->
      List.iteri
        (fun k i ->
          if Hashtbl.find settled i <> vec.(k) then bump functional i 1)
        ins;
      apply_vector_event vec);
    match model with
    | Zero_delay ->
      (* Functional = total under zero delay. *)
      ()
    | Unit_delay | Node_delays -> apply_vector_zero_delay vec
  in
  let cycles = ref 0 in
  List.iteri
    (fun k vec ->
      if k > 0 then begin
        apply_vector vec;
        incr cycles
      end)
    stream;
  (match model with
  | Zero_delay ->
    Hashtbl.iter (fun i c -> Hashtbl.replace functional i c) total
  | Unit_delay | Node_delays -> ());
  { total; functional; cycles = !cycles }

let node_activity r i =
  if r.cycles = 0 then 0.0
  else
    float_of_int (Option.value (Hashtbl.find_opt r.total i) ~default:0)
    /. float_of_int r.cycles

let sum tbl = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0

let total_transitions r = sum r.total
let functional_transitions r = sum r.functional

let spurious_fraction r =
  let t = total_transitions r in
  if t = 0 then 0.0
  else float_of_int (t - functional_transitions r) /. float_of_int t

let switched_capacitance net r =
  if r.cycles = 0 then 0.0
  else
    Hashtbl.fold
      (fun i c acc -> acc +. (Network.cap net i *. float_of_int c))
      r.total 0.0
    /. float_of_int r.cycles

let energy params net r =
  Hashtbl.fold
    (fun i c acc ->
      acc
      +. float_of_int c
         *. Lowpower.Power_model.switching_energy_per_transition params
              ~capacitance:(Network.cap net i))
    r.total 0.0
