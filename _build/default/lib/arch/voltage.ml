let shape vdd vt = vdd /. ((vdd -. vt) ** 2.0)

let delay_ratio ~vdd ~ref_vdd ~v_threshold =
  if vdd <= v_threshold || ref_vdd <= v_threshold then
    invalid_arg "Voltage.delay_ratio: supply below threshold";
  shape vdd v_threshold /. shape ref_vdd v_threshold

let min_vdd ~steps ~deadline_steps ~ref_vdd ~v_threshold =
  if steps <= 0 || deadline_steps <= 0 then
    invalid_arg "Voltage.min_vdd: step counts must be positive";
  if steps > deadline_steps then None
  else begin
    (* Feasible iff steps * delay(v) <= deadline_steps * delay(ref), i.e.
       delay_ratio(v) <= deadline_steps / steps.  delay_ratio is monotone
       decreasing in v above the threshold, so bisection applies. *)
    let budget = float_of_int deadline_steps /. float_of_int steps in
    let fits v = delay_ratio ~vdd:v ~ref_vdd ~v_threshold <= budget +. 1e-12 in
    let lo = v_threshold +. 0.05 in
    if fits lo then Some lo
    else begin
      let rec bisect lo hi iter =
        if iter = 0 then hi
        else
          let mid = 0.5 *. (lo +. hi) in
          if fits mid then bisect lo mid (iter - 1) else bisect mid hi (iter - 1)
      in
      Some (bisect lo ref_vdd 60)
    end
  end

type operating_point = {
  vdd : float;
  steps : int;
  switched_cap : float;
  power : float;
}

let evaluate ~switched_cap ~steps ~deadline_steps ~ref_vdd ~v_threshold =
  match min_vdd ~steps ~deadline_steps ~ref_vdd ~v_threshold with
  | None -> None
  | Some vdd ->
    (* Throughput is fixed (one evaluation per deadline), so power is
       proportional to energy per evaluation: C * V^2. *)
    Some { vdd; steps; switched_cap; power = switched_cap *. vdd *. vdd }
