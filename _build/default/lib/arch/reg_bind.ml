type lifetime = {
  var : Dfg.id;
  birth : int;
  death : int;
}

type binding = (Dfg.id, int) Hashtbl.t

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let is_op dfg i =
  match Modlib.kind_of_op (Dfg.op dfg i) with Some _ -> true | None -> false

let lifetimes dfg d sched =
  List.filter_map
    (fun i ->
      if not (is_op dfg i) then None
      else begin
        let birth = Hashtbl.find sched.Schedule.start i + d i in
        let consumers = Dfg.succs dfg i in
        let death =
          List.fold_left
            (fun acc j ->
              match Dfg.op dfg j with
              | Dfg.Output _ -> max acc sched.Schedule.makespan
              | Dfg.Add | Dfg.Sub | Dfg.Mul | Dfg.Shift_left _ ->
                max acc (Hashtbl.find sched.Schedule.start j)
              | Dfg.Input _ | Dfg.Const _ -> acc)
            (-1) consumers
        in
        if death < 0 then None else Some { var = i; birth; death }
      end)
    (Dfg.nodes dfg)

let by_birth lts = List.sort (fun a b -> compare (a.birth, a.var) (b.birth, b.var)) lts

let by_birth_public = by_birth

let left_edge dfg d sched =
  let binding = Hashtbl.create 32 in
  let regs = ref [] in (* (index, death of current occupant) *)
  List.iter
    (fun lt ->
      let rec pick seen = function
        | [] ->
          let idx = List.length !regs in
          regs := List.rev seen @ [ (idx, lt.death) ];
          idx
        | (idx, death) :: rest when death <= lt.birth ->
          regs := List.rev seen @ ((idx, lt.death) :: rest);
          idx
        | busy :: rest -> pick (busy :: seen) rest
      in
      Hashtbl.replace binding lt.var (pick [] !regs))
    (by_birth (lifetimes dfg d sched));
  binding

let register_count binding =
  Hashtbl.fold (fun _ r acc -> max acc (r + 1)) binding 0

let sequences dfg d sched binding =
  let lts = by_birth (lifetimes dfg d sched) in
  let seqs = Hashtbl.create 8 in
  List.iter
    (fun lt ->
      match Hashtbl.find_opt binding lt.var with
      | None -> ()
      | Some r ->
        Hashtbl.replace seqs r
          (Option.value (Hashtbl.find_opt seqs r) ~default:[] @ [ lt.var ]))
    lts;
  seqs

let register_toggles dfg d sched binding ~samples =
  let values = Dfg.value_trace dfg samples in
  let seqs = sequences dfg d sched binding in
  let nsamples = List.length samples in
  if nsamples = 0 then 0.0
  else begin
    let total = ref 0 in
    Hashtbl.iter
      (fun _reg vars ->
        let traces =
          List.map (fun v -> Array.of_list (Hashtbl.find values v)) vars
        in
        let last = ref None in
        for s = 0 to nsamples - 1 do
          List.iter
            (fun tr ->
              let v = tr.(s) in
              (match !last with
              | Some prev -> total := !total + popcount (prev lxor v)
              | None -> total := !total + popcount v);
              last := Some v)
            traces
        done)
      seqs;
    float_of_int !total /. float_of_int nsamples
  end

let representative values v =
  match Hashtbl.find_opt values v with
  | None | Some [] -> 0
  | Some tr ->
    let n = List.length tr in
    let bits = 30 in
    let counts = Array.make bits 0 in
    List.iter
      (fun w ->
        for k = 0 to bits - 1 do
          if w land (1 lsl k) <> 0 then counts.(k) <- counts.(k) + 1
        done)
      tr;
    let w = ref 0 in
    for k = 0 to bits - 1 do
      if 2 * counts.(k) > n then w := !w lor (1 lsl k)
    done;
    !w

let power_aware_greedy dfg d sched ~values ~max_registers =
  let binding = Hashtbl.create 32 in
  let regs = ref [] in (* (index, death, last representative) *)
  List.iter
    (fun lt ->
      let rep = representative values lt.var in
      let free = List.filter (fun (_, death, _) -> death <= lt.birth) !regs in
      let best =
        List.fold_left
          (fun acc ((_, _, last) as cand) ->
            match acc with
            | None -> Some cand
            | Some (_, _, blast) ->
              if popcount (last lxor rep) < popcount (blast lxor rep) then
                Some cand
              else acc)
          None free
      in
      let chosen =
        match best with
        | Some (idx, _, last) ->
          if
            List.length !regs < max_registers
            && popcount (last lxor rep) > popcount rep
          then List.length !regs (* a cold register is cheaper *)
          else idx
        | None ->
          if List.length !regs < max_registers then List.length !regs
          else
            invalid_arg "Reg_bind.power_aware: register budget exceeded"
      in
      Hashtbl.replace binding lt.var chosen;
      regs :=
        (if chosen >= List.length !regs then !regs @ [ (chosen, lt.death, rep) ]
         else
           List.map
             (fun (i, death, last) ->
               if i = chosen then (i, lt.death, rep) else (i, death, last))
             !regs))
    (by_birth (lifetimes dfg d sched));
  binding

let power_aware dfg d sched ~samples ~max_registers =
  let le = left_edge dfg d sched in
  if register_count le > max_registers then
    invalid_arg "Reg_bind.power_aware: budget below the left-edge minimum";
  let values = Dfg.value_trace dfg samples in
  let greedy = power_aware_greedy dfg d sched ~values ~max_registers in
  if
    register_toggles dfg d sched le ~samples
    < register_toggles dfg d sched greedy ~samples
  then le
  else greedy

let valid dfg d sched binding =
  let lts = lifetimes dfg d sched in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          a.var >= b.var
          || Hashtbl.find_opt binding a.var <> Hashtbl.find_opt binding b.var
          || Hashtbl.find_opt binding a.var = None
          || a.death <= b.birth || b.death <= a.birth)
        lts)
    lts
