(** Voltage scaling enabled by transformations (§IV.B, [7]).

    For a fixed-throughput system, a schedule with fewer control steps can
    run each step slower and still meet the sample deadline — and a slower
    step tolerates a lower supply, whose power benefit is quadratic.  This
    module turns "steps saved" into "volts saved" with the standard
    first-order delay model [delay ∝ V / (V - Vt)^2]. *)

val delay_ratio : vdd:float -> ref_vdd:float -> v_threshold:float -> float
(** Step delay at [vdd] relative to [ref_vdd].  Raises [Invalid_argument]
    unless both supplies exceed the threshold. *)

val min_vdd :
  steps:int -> deadline_steps:int -> ref_vdd:float -> v_threshold:float
  -> float option
(** Lowest supply (found by bisection down to [v_threshold + 50mV]) at
    which a [steps]-long schedule fits the time budget that
    [deadline_steps] steps would take at [ref_vdd].  [None] if even
    [ref_vdd] does not fit (steps > deadline_steps). *)

type operating_point = {
  vdd : float;
  steps : int;
  switched_cap : float;  (** per DFG evaluation *)
  power : float;         (** relative: C V^2 / T with T fixed at the deadline *)
}

val evaluate :
  switched_cap:float -> steps:int -> deadline_steps:int -> ref_vdd:float
  -> v_threshold:float -> operating_point option
(** Power at the lowest feasible supply, normalized so that the reference
    design ([steps = deadline_steps], same cap) at [ref_vdd] has
    [power = switched_cap * ref_vdd^2]. *)
