(** Module selection (§IV.B, [17] Goodby, Orailoglu & Chau:
    "microarchitectural synthesis of performance-constrained, low-power
    VLSI designs").

    When the library offers several implementations of a unit kind with a
    power/delay range, the same schedule deadline can be met with critical
    operations on fast, power-hungry modules and off-critical operations on
    slow, low-energy ones.  The classic heuristic mirrors transistor
    sizing: start all-fast, then repeatedly downgrade the operation with
    the best energy saving whose slack covers the extra steps. *)

type choice = (Dfg.id, Modlib.impl) Hashtbl.t

val all_fastest : Modlib.impl list -> Dfg.t -> choice
val all_cheapest : Modlib.impl list -> Dfg.t -> choice

val energy : choice -> float
(** Sum of the chosen implementations' per-operation energies. *)

val makespan : Dfg.t -> choice -> int
(** ASAP critical path under the chosen per-operation delays. *)

val select :
  Modlib.impl list -> Dfg.t -> deadline:int -> choice
(** Greedy slack-driven downgrade: begin from {!all_fastest}; while some
    single-operation downgrade keeps the ASAP makespan within [deadline],
    apply the one with the largest energy saving per added step.  Raises
    [Invalid_argument] if even the all-fastest choice misses the
    deadline. *)
