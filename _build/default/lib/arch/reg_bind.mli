(** Variable-to-register binding (§IV.B; the storage half of [33], [34]).

    After scheduling, every operation result is a {e variable} live from
    the step its producer finishes to the last step a consumer starts.
    Variables with disjoint lifetimes can share one physical register; the
    classic left-edge algorithm minimizes register count.  The binding also
    fixes which value sequences each register carries, hence its switching:
    the power-aware variant packs variables whose values are close in
    Hamming distance into the same register. *)

type lifetime = {
  var : Dfg.id;      (** the producing operation *)
  birth : int;       (** step the value becomes available *)
  death : int;       (** last step it is consumed (>= birth) *)
}

val lifetimes : Dfg.t -> Schedule.delays -> Schedule.t -> lifetime list
(** One entry per operation node whose value is consumed by another
    operation or an output; DFG inputs are assumed to live in their own
    input registers and are excluded. *)

val by_birth_public : lifetime list -> lifetime list
(** Lifetimes sorted by (birth, variable) — the order bindings and the
    interconnect model process them in. *)

type binding = (Dfg.id, int) Hashtbl.t
(** Variable -> register index. *)

val left_edge : Dfg.t -> Schedule.delays -> Schedule.t -> binding
(** Minimal register count: sort by birth, reuse the first register whose
    occupant is dead. *)

val register_count : binding -> int

val register_toggles :
  Dfg.t -> Schedule.delays -> Schedule.t -> binding
  -> samples:(string * int) list list -> float
(** Average register-bit toggles per DFG evaluation: each register sees the
    value sequence of the variables bound to it, in schedule order, chained
    across evaluations. *)

val power_aware :
  Dfg.t -> Schedule.delays -> Schedule.t
  -> samples:(string * int) list list -> max_registers:int -> binding
(** Greedy switched-capacitance binding: variables in birth order, each
    placed on the free register whose last value is nearest its
    representative value, opening new registers while the budget allows —
    never worse than {!left_edge} (used as fallback).  Raises
    [Invalid_argument] if even the left-edge binding needs more than
    [max_registers]. *)

val valid : Dfg.t -> Schedule.delays -> Schedule.t -> binding -> bool
(** No two simultaneously-live variables share a register. *)
