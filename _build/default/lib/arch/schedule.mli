(** Operation scheduling onto control steps (§IV.B).

    ASAP/ALAP bracket each operation's mobility window; list scheduling
    packs operations under resource constraints; the time-constrained
    variant spreads operations inside their windows to minimize peak
    resource usage (a light version of force-directed scheduling).  All
    schedules are checked against data dependences. *)

type t = {
  start : (Dfg.id, int) Hashtbl.t; (** first control step of each operation *)
  makespan : int;                  (** total control steps used *)
}

type delays = Dfg.id -> int
(** Control steps each operation occupies (from its module selection). *)

val uniform_delays : ?mul_steps:int -> Dfg.t -> delays
(** 1 step for adds/shifts, [mul_steps] (default 2) for multiplies. *)

val of_impl_choice : Dfg.t -> (Dfg.id -> Modlib.impl) -> delays

val asap : Dfg.t -> delays -> t
val alap : Dfg.t -> deadline:int -> delays -> t
(** Raises [Invalid_argument] if the deadline is below the critical path. *)

val mobility : Dfg.t -> delays -> (Dfg.id * int) list
(** ALAP (at the ASAP makespan) minus ASAP start per operation. *)

val list_schedule :
  Dfg.t -> delays -> resources:(Modlib.kind -> int) -> t
(** Resource-constrained minimum-latency heuristic; priority = longest path
    to a sink.  Raises [Invalid_argument] if some needed resource count is
    zero. *)

val minimize_resources : Dfg.t -> delays -> deadline:int -> t
(** Time-constrained: place each operation inside its mobility window on
    the step(s) with the lowest current usage of its unit kind (distribution
    scheduling). *)

val resource_usage : Dfg.t -> delays -> t -> (Modlib.kind * int) list
(** Peak simultaneous units of each kind the schedule requires. *)

val valid : Dfg.t -> delays -> t -> bool
(** Every operation starts after all its operand producers finish. *)
