(** Architecture-level power analysis (§IV.A; [15], [21], [22], [36]).

    Three estimators of a scheduled datapath's switched capacitance per DFG
    evaluation, in increasing fidelity:

    - {!module_cost_sum} — the [36]-style simulation model: each activation
      of a module adds that module's {e average} power cost, characterized
      once on white-noise operands.  Ignores all data correlation.
    - {!activity_macromodel} — the [21]/[22]-style black-box capacitance
      model: per activation, energy is an affine function of the {e actual}
      operand toggle density the module sees, with coefficients fitted on
      random data.
    - {!gate_level} — the reference: execute the operand trace on real
      gate-level module implementations (ripple adder, array multiplier
      from {!Circuits}) with event-driven simulation, counting switched
      capacitance including glitches.

    Experiment E14 reports both estimators' errors against the reference on
    workloads of varying operand correlation. *)

type calibration = {
  add_avg : float;          (** gate-level energy of an average add *)
  mul_avg : float;
  add_coeff : float * float;(** (base, per-toggle) affine fit for the adder *)
  mul_coeff : float * float;
  word_width : int;
}

val calibrate : ?width:int -> ?samples:int -> seed:int -> unit -> calibration
(** Characterize the gate-level adder and multiplier on white-noise
    operands (default width 8, 200 samples). *)

val gate_level :
  calibration -> Dfg.t -> traces:(Dfg.id, (int * int) list) Hashtbl.t -> float
(** Reference switched capacitance per evaluation: every Add/Sub runs on
    the gate-level adder, every Mul on the gate-level multiplier, fed the
    exact operand sequence of the trace. *)

val module_cost_sum :
  calibration -> Dfg.t -> float
(** Activations times average module cost; needs no trace at all. *)

val activity_macromodel :
  calibration -> Dfg.t -> traces:(Dfg.id, (int * int) list) Hashtbl.t -> float
(** Affine-in-toggle-density prediction from the actual operand stream. *)
