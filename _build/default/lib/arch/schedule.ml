type t = {
  start : (Dfg.id, int) Hashtbl.t;
  makespan : int;
}

type delays = Dfg.id -> int

let uniform_delays ?(mul_steps = 2) dfg i =
  match Dfg.op dfg i with
  | Dfg.Mul -> mul_steps
  | Dfg.Add | Dfg.Sub | Dfg.Shift_left _ -> 1
  | Dfg.Input _ | Dfg.Const _ | Dfg.Output _ -> 0

let of_impl_choice _dfg choice i = (choice i).Modlib.delay_steps

let is_op dfg i =
  match Modlib.kind_of_op (Dfg.op dfg i) with Some _ -> true | None -> false

let op_kind dfg i =
  match Modlib.kind_of_op (Dfg.op dfg i) with
  | Some k -> k
  | None -> invalid_arg "Schedule: not an operation node"

let finish d start i = start + d i

let makespan_of dfg d start =
  Hashtbl.fold
    (fun i s acc -> if is_op dfg i then max acc (finish d s i) else acc)
    start 0

let asap dfg d =
  let start = Hashtbl.create 32 in
  List.iter
    (fun i ->
      let s =
        List.fold_left
          (fun acc a ->
            if is_op dfg a then max acc (Hashtbl.find start a + d a) else acc)
          0 (Dfg.args dfg i)
      in
      Hashtbl.replace start i s)
    (Dfg.nodes dfg);
  (* Keep only operation starts. *)
  let ops = Hashtbl.create 32 in
  List.iter (fun i -> Hashtbl.replace ops i (Hashtbl.find start i))
    (Dfg.operation_nodes dfg);
  { start = ops; makespan = makespan_of dfg d ops }

let critical_path dfg d = (asap dfg d).makespan

let alap dfg ~deadline d =
  if deadline < critical_path dfg d then
    invalid_arg "Schedule.alap: deadline below critical path";
  let lstart = Hashtbl.create 32 in
  List.iter
    (fun i ->
      if is_op dfg i then begin
        let op_succs = List.filter (is_op dfg) (Dfg.succs dfg i) in
        let latest_finish =
          List.fold_left
            (fun acc s -> min acc (Hashtbl.find lstart s))
            deadline op_succs
        in
        Hashtbl.replace lstart i (latest_finish - d i)
      end)
    (List.rev (Dfg.nodes dfg));
  { start = lstart; makespan = deadline }

let mobility dfg d =
  let early = asap dfg d in
  let late = alap dfg ~deadline:early.makespan d in
  List.map
    (fun i ->
      (i, Hashtbl.find late.start i - Hashtbl.find early.start i))
    (Dfg.operation_nodes dfg)

(* Longest path from each op to any sink — the list-scheduling priority. *)
let priorities dfg d =
  let pr = Hashtbl.create 32 in
  List.iter
    (fun i ->
      if is_op dfg i then begin
        let downstream =
          List.fold_left
            (fun acc s ->
              if is_op dfg s then max acc (Hashtbl.find pr s) else acc)
            0 (Dfg.succs dfg i)
        in
        Hashtbl.replace pr i (downstream + d i)
      end)
    (List.rev (Dfg.nodes dfg));
  pr

let list_schedule dfg d ~resources =
  let ops = Dfg.operation_nodes dfg in
  List.iter
    (fun i ->
      if resources (op_kind dfg i) <= 0 then
        invalid_arg "Schedule.list_schedule: zero resources for a needed kind")
    ops;
  let pr = priorities dfg d in
  let start = Hashtbl.create 32 in
  let unscheduled = ref ops in
  let busy = Hashtbl.create 8 in (* kind -> finish times of running ops *)
  let running k step =
    List.length
      (List.filter (fun f -> f > step)
         (Option.value (Hashtbl.find_opt busy k) ~default:[]))
  in
  let ready step i =
    List.for_all
      (fun a ->
        (not (is_op dfg a))
        ||
        match Hashtbl.find_opt start a with
        | Some s -> s + d a <= step
        | None -> false)
      (Dfg.args dfg i)
  in
  let step = ref 0 in
  while !unscheduled <> [] do
    let candidates =
      List.filter (ready !step) !unscheduled
      |> List.sort (fun a b -> compare (Hashtbl.find pr b) (Hashtbl.find pr a))
    in
    List.iter
      (fun i ->
        let k = op_kind dfg i in
        if running k !step < resources k then begin
          Hashtbl.replace start i !step;
          Hashtbl.replace busy k
            ((!step + d i)
            :: Option.value (Hashtbl.find_opt busy k) ~default:[]);
          unscheduled := List.filter (fun j -> j <> i) !unscheduled
        end)
      candidates;
    incr step;
    if !step > 10_000 then invalid_arg "Schedule.list_schedule: no progress"
  done;
  { start; makespan = makespan_of dfg d start }

let minimize_resources dfg d ~deadline =
  let early = asap dfg d in
  let late = alap dfg ~deadline d in
  let usage = Hashtbl.create 8 in (* (kind, step) -> count *)
  let use k s by =
    let c = Option.value (Hashtbl.find_opt usage (k, s)) ~default:0 in
    Hashtbl.replace usage (k, s) (c + by)
  in
  let start = Hashtbl.create 32 in
  (* Least-mobile first; each op picks the window position minimizing its
     peak incremental usage, respecting already-placed predecessors and
     successors. *)
  let ops =
    List.sort
      (fun (_, ma) (_, mb) -> compare ma mb)
      (List.map
         (fun i ->
           (i, Hashtbl.find late.start i - Hashtbl.find early.start i))
         (Dfg.operation_nodes dfg))
  in
  List.iter
    (fun (i, _) ->
      let k = op_kind dfg i in
      let lo =
        List.fold_left
          (fun acc a ->
            if is_op dfg a then
              match Hashtbl.find_opt start a with
              | Some s -> max acc (s + d a)
              | None -> max acc (Hashtbl.find early.start a + d a)
            else acc)
          (Hashtbl.find early.start i)
          (Dfg.args dfg i)
      in
      let hi =
        List.fold_left
          (fun acc s ->
            if is_op dfg s then
              match Hashtbl.find_opt start s with
              | Some ss -> min acc (ss - d i)
              | None -> min acc (Hashtbl.find late.start s - d i)
            else acc)
          (Hashtbl.find late.start i)
          (Dfg.succs dfg i)
      in
      let cost s =
        let rec peak acc step =
          if step >= s + d i then acc
          else
            peak
              (max acc
                 (Option.value (Hashtbl.find_opt usage (k, step)) ~default:0))
              (step + 1)
        in
        peak 0 s
      in
      let best = ref lo in
      for s = lo to hi do
        if cost s < cost !best then best := s
      done;
      Hashtbl.replace start i !best;
      for step = !best to !best + d i - 1 do
        use k step 1
      done)
    ops;
  { start; makespan = makespan_of dfg d start }

let resource_usage dfg d sched =
  let usage = Hashtbl.create 8 in
  Hashtbl.iter
    (fun i s ->
      let k = op_kind dfg i in
      for step = s to s + d i - 1 do
        let c = Option.value (Hashtbl.find_opt usage (k, step)) ~default:0 in
        Hashtbl.replace usage (k, step) (c + 1)
      done)
    sched.start;
  let peak = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (k, _) c ->
      let p = Option.value (Hashtbl.find_opt peak k) ~default:0 in
      Hashtbl.replace peak k (max p c))
    usage;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) peak [])

let valid dfg d sched =
  List.for_all
    (fun i ->
      match Hashtbl.find_opt sched.start i with
      | None -> false
      | Some s ->
        s >= 0
        && s + d i <= sched.makespan
        && List.for_all
             (fun a ->
               (not (is_op dfg a))
               ||
               match Hashtbl.find_opt sched.start a with
               | Some sa -> sa + d a <= s
               | None -> false)
             (Dfg.args dfg i))
    (Dfg.operation_nodes dfg)
