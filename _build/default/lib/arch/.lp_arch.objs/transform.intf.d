lib/arch/transform.mli: Dfg Lowpower
