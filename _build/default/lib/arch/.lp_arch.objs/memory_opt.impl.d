lib/arch/memory_opt.ml: Float Hashtbl List
