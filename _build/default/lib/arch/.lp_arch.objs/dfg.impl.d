lib/arch/dfg.ml: Array Format Hashtbl List Printf String
