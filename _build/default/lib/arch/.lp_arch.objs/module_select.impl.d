lib/arch/module_select.ml: Dfg Hashtbl List Modlib Schedule
