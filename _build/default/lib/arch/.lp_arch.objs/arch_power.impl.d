lib/arch/arch_power.ml: Circuits Dfg Event_sim Hashtbl List Lowpower
