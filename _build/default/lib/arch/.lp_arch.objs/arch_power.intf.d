lib/arch/arch_power.mli: Dfg Hashtbl
