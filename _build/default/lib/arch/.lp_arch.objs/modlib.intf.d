lib/arch/modlib.mli: Dfg
