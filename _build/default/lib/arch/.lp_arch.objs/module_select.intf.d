lib/arch/module_select.mli: Dfg Hashtbl Modlib
