lib/arch/transform.ml: Dfg Hashtbl List Lowpower Option Schedule
