lib/arch/interconnect.ml: Array Dfg Hashtbl List Modlib Option Reg_bind Schedule
