lib/arch/allocate.ml: Array Dfg Hashtbl List Modlib Option Schedule
