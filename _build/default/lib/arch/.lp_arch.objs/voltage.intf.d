lib/arch/voltage.mli:
