lib/arch/interconnect.mli: Allocate Dfg Reg_bind Schedule
