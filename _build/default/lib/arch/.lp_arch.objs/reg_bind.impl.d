lib/arch/reg_bind.ml: Array Dfg Hashtbl List Modlib Option Schedule
