lib/arch/dfg.mli: Format Hashtbl
