lib/arch/reg_bind.mli: Dfg Hashtbl Schedule
