lib/arch/schedule.ml: Dfg Hashtbl List Modlib Option
