lib/arch/schedule.mli: Dfg Hashtbl Modlib
