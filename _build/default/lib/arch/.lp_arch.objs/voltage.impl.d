lib/arch/voltage.ml:
