lib/arch/memory_opt.mli:
