lib/arch/allocate.mli: Dfg Hashtbl Modlib Schedule
