lib/arch/modlib.ml: Dfg List
