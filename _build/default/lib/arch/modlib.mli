(** Module library: functional-unit implementations with power/delay
    variants (§IV.B, [17] Goodby et al.).

    Behavioral synthesis can meet the same schedule with different module
    selections: a slow, low-capacitance multiplier where slack allows, a
    fast power-hungry one on the critical path. *)

type kind = Adder_unit | Multiplier_unit | Shifter_unit

type impl = {
  impl_name : string;
  kind : kind;
  delay_steps : int;     (** control steps per operation *)
  energy_per_op : float; (** average switched capacitance per activation *)
  area : float;
}

val kind_of_op : Dfg.op -> kind option
(** Which unit kind executes a DFG operation ([None] for
    Input/Const/Output). *)

val default : impl list
(** Two adders (ripple: slow/cheap, cla: fast/costly), three multipliers
    (lowpower: 3 steps, array: 2 steps, fast: 1 step) and a shifter. *)

val implementations : impl list -> kind -> impl list
(** Sorted fastest first. *)

val fastest : impl list -> kind -> impl
val cheapest : impl list -> kind -> impl
(** Lowest energy.  Both raise [Not_found] if the kind is absent. *)
