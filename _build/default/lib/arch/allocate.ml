type binding = (Dfg.id, int) Hashtbl.t

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let hamming_pair (a1, b1) (a2, b2) = popcount (a1 lxor a2) + popcount (b1 lxor b2)

let kind_of dfg i =
  match Modlib.kind_of_op (Dfg.op dfg i) with
  | Some k -> k
  | None -> invalid_arg "Allocate: not an operation node"

let by_start dfg sched =
  List.sort
    (fun a b ->
      compare (Hashtbl.find sched.Schedule.start a, a)
        (Hashtbl.find sched.Schedule.start b, b))
    (Dfg.operation_nodes dfg)

let left_edge dfg d sched =
  let binding = Hashtbl.create 32 in
  let free = Hashtbl.create 8 in (* kind -> (instance, free_time) list *)
  List.iter
    (fun i ->
      let k = kind_of dfg i in
      let s = Hashtbl.find sched.Schedule.start i in
      let insts = Option.value (Hashtbl.find_opt free k) ~default:[] in
      let rec pick seen = function
        | [] ->
          let inst = List.length insts in
          (inst, List.rev seen @ [ (inst, s + d i) ])
        | (inst, ft) :: rest when ft <= s ->
          (inst, List.rev seen @ ((inst, s + d i) :: rest))
        | busy :: rest -> pick (busy :: seen) rest
      in
      let inst, insts = pick [] insts in
      Hashtbl.replace free k insts;
      Hashtbl.replace binding i inst)
    (by_start dfg sched);
  binding

let instances_used dfg binding =
  let peak = Hashtbl.create 4 in
  Hashtbl.iter
    (fun i inst ->
      let k = kind_of dfg i in
      let p = Option.value (Hashtbl.find_opt peak k) ~default:0 in
      Hashtbl.replace peak k (max p (inst + 1)))
    binding;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) peak [])

let unit_sequences dfg sched binding =
  let seqs = Hashtbl.create 8 in (* (kind, instance) -> op list in time order *)
  List.iter
    (fun i ->
      let key = (kind_of dfg i, Hashtbl.find binding i) in
      let l = Option.value (Hashtbl.find_opt seqs key) ~default:[] in
      Hashtbl.replace seqs key (i :: l))
    (List.rev (by_start dfg sched));
  seqs

let operand_toggles dfg sched binding ~traces =
  let seqs = unit_sequences dfg sched binding in
  let nsamples =
    Hashtbl.fold (fun _ tr acc -> max acc (List.length tr)) traces 0
  in
  if nsamples = 0 then 0.0
  else begin
    let total = ref 0 in
    Hashtbl.iter
      (fun _key ops ->
        let op_traces = List.map (fun i -> Array.of_list (Hashtbl.find traces i)) ops in
        (* The unit's registers persist across evaluations: chain samples. *)
        let last = ref None in
        for s = 0 to nsamples - 1 do
          List.iter
            (fun tr ->
              let operands = tr.(s) in
              (match !last with
              | Some prev -> total := !total + hamming_pair prev operands
              | None -> total := !total + hamming_pair (0, 0) operands);
              last := Some operands)
            op_traces
        done)
      seqs;
    float_of_int !total /. float_of_int nsamples
  end

let mean_operands traces i =
  match Hashtbl.find_opt traces i with
  | None | Some [] -> (0, 0)
  | Some tr ->
    (* Per-bit majority vote gives a representative word. *)
    let n = List.length tr in
    let bits = 30 in
    let count_a = Array.make bits 0 and count_b = Array.make bits 0 in
    List.iter
      (fun (a, b) ->
        for k = 0 to bits - 1 do
          if a land (1 lsl k) <> 0 then count_a.(k) <- count_a.(k) + 1;
          if b land (1 lsl k) <> 0 then count_b.(k) <- count_b.(k) + 1
        done)
      tr;
    let word counts =
      let w = ref 0 in
      for k = 0 to bits - 1 do
        if 2 * counts.(k) > n then w := !w lor (1 lsl k)
      done;
      !w
    in
    (word count_a, word count_b)

let power_aware_greedy dfg d sched ~traces ~max_instances =
  let binding = Hashtbl.create 32 in
  let insts = Hashtbl.create 8 in
  (* kind -> (instance, free_time, last representative operands) list *)
  List.iter
    (fun i ->
      let k = kind_of dfg i in
      let s = Hashtbl.find sched.Schedule.start i in
      let rep = mean_operands traces i in
      let current = Option.value (Hashtbl.find_opt insts k) ~default:[] in
      let free_now =
        List.filter (fun (_, ft, _) -> ft <= s) current
      in
      let best_free =
        List.fold_left
          (fun acc ((_, _, last) as cand) ->
            match acc with
            | None -> Some cand
            | Some (_, _, blast) ->
              if hamming_pair last rep < hamming_pair blast rep then Some cand
              else acc)
          None free_now
      in
      let open_new () =
        if List.length current >= max_instances k then None
        else Some (List.length current)
      in
      let chosen =
        match best_free, open_new () with
        | Some (inst, _, last), Some _ ->
          (* Prefer reusing a warm unit over opening a cold one unless the
             warm unit is maximally mismatched. *)
          if hamming_pair last rep <= hamming_pair (0, 0) rep then Some inst
          else Some (List.length current)
        | Some (inst, _, _), None -> Some inst
        | None, Some inst -> Some inst
        | None, None -> None
      in
      match chosen with
      | None ->
        invalid_arg
          "Allocate.power_aware: schedule exceeds the instance budget"
      | Some inst ->
        Hashtbl.replace binding i inst;
        let updated =
          if inst >= List.length current then
            current @ [ (inst, s + d i, rep) ]
          else
            List.map
              (fun (j, ft, last) ->
                if j = inst then (j, s + d i, rep) else (j, ft, last))
              current
        in
        Hashtbl.replace insts k updated)
    (by_start dfg sched);
  binding

let power_aware dfg d sched ~traces ~max_instances =
  (* The greedy warm-unit heuristic can lose to left-edge on some traces;
     the correlation-blind baseline is always a legal fallback, so the
     result is never worse than it. *)
  let greedy = power_aware_greedy dfg d sched ~traces ~max_instances in
  let le = left_edge dfg d sched in
  let le_fits =
    List.for_all
      (fun (k, n) -> n <= max_instances k)
      (instances_used dfg le)
  in
  if
    le_fits
    && operand_toggles dfg sched le ~traces
       < operand_toggles dfg sched greedy ~traces
  then le
  else greedy

let valid dfg d sched binding =
  let seqs = unit_sequences dfg sched binding in
  Hashtbl.fold
    (fun _ ops ok ->
      ok
      &&
      let rec no_overlap = function
        | a :: (b :: _ as rest) ->
          Hashtbl.find sched.Schedule.start a + d a
          <= Hashtbl.find sched.Schedule.start b
          && no_overlap rest
        | [ _ ] | [] -> true
      in
      no_overlap ops)
    seqs true
