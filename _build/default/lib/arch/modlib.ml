type kind = Adder_unit | Multiplier_unit | Shifter_unit

type impl = {
  impl_name : string;
  kind : kind;
  delay_steps : int;
  energy_per_op : float;
  area : float;
}

let kind_of_op = function
  | Dfg.Add | Dfg.Sub -> Some Adder_unit
  | Dfg.Mul -> Some Multiplier_unit
  | Dfg.Shift_left _ -> Some Shifter_unit
  | Dfg.Input _ | Dfg.Const _ | Dfg.Output _ -> None

let default =
  [
    { impl_name = "add_ripple"; kind = Adder_unit; delay_steps = 1;
      energy_per_op = 8.0; area = 10.0 };
    { impl_name = "add_cla"; kind = Adder_unit; delay_steps = 1;
      energy_per_op = 12.0; area = 16.0 };
    { impl_name = "mul_lowpower"; kind = Multiplier_unit; delay_steps = 3;
      energy_per_op = 28.0; area = 60.0 };
    { impl_name = "mul_array"; kind = Multiplier_unit; delay_steps = 2;
      energy_per_op = 40.0; area = 80.0 };
    { impl_name = "mul_fast"; kind = Multiplier_unit; delay_steps = 1;
      energy_per_op = 60.0; area = 120.0 };
    { impl_name = "shift"; kind = Shifter_unit; delay_steps = 1;
      energy_per_op = 2.0; area = 4.0 };
  ]

let implementations lib kind =
  List.sort
    (fun a b -> compare a.delay_steps b.delay_steps)
    (List.filter (fun i -> i.kind = kind) lib)

let fastest lib kind =
  match implementations lib kind with
  | [] -> raise Not_found
  | i :: _ -> i

let cheapest lib kind =
  match List.filter (fun i -> i.kind = kind) lib with
  | [] -> raise Not_found
  | first :: rest ->
    List.fold_left
      (fun best i -> if i.energy_per_op < best.energy_per_op then i else best)
      first rest
