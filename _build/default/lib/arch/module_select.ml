type choice = (Dfg.id, Modlib.impl) Hashtbl.t

let ops_with_kind dfg =
  List.filter_map
    (fun i ->
      match Modlib.kind_of_op (Dfg.op dfg i) with
      | Some k -> Some (i, k)
      | None -> None)
    (Dfg.nodes dfg)

let choose pick lib dfg =
  let c = Hashtbl.create 32 in
  List.iter (fun (i, k) -> Hashtbl.replace c i (pick lib k)) (ops_with_kind dfg);
  c

let all_fastest lib dfg = choose Modlib.fastest lib dfg
let all_cheapest lib dfg = choose Modlib.cheapest lib dfg

let energy choice =
  Hashtbl.fold (fun _ impl acc -> acc +. impl.Modlib.energy_per_op) choice 0.0

let makespan dfg choice =
  let d i =
    match Hashtbl.find_opt choice i with
    | Some impl -> impl.Modlib.delay_steps
    | None -> 0
  in
  (Schedule.asap dfg d).Schedule.makespan

let select lib dfg ~deadline =
  let choice = all_fastest lib dfg in
  if makespan dfg choice > deadline then
    invalid_arg "Module_select.select: deadline below the all-fastest makespan";
  let candidates_for i =
    match Modlib.kind_of_op (Dfg.op dfg i) with
    | Some k -> Modlib.implementations lib k
    | None -> []
  in
  let improved = ref true in
  while !improved do
    improved := false;
    (* Best single downgrade: largest energy saving per added step that
       still meets the deadline. *)
    let best = ref None in
    List.iter
      (fun (i, _) ->
        let current = Hashtbl.find choice i in
        List.iter
          (fun impl ->
            if impl.Modlib.energy_per_op < current.Modlib.energy_per_op then begin
              Hashtbl.replace choice i impl;
              if makespan dfg choice <= deadline then begin
                let saving =
                  current.Modlib.energy_per_op -. impl.Modlib.energy_per_op
                in
                let steps =
                  max 1 (impl.Modlib.delay_steps - current.Modlib.delay_steps)
                in
                let score = saving /. float_of_int steps in
                match !best with
                | Some (_, _, s) when s >= score -> ()
                | Some _ | None -> best := Some (i, impl, score)
              end;
              Hashtbl.replace choice i current
            end)
          (candidates_for i))
      (ops_with_kind dfg);
    match !best with
    | Some (i, impl, _) ->
      Hashtbl.replace choice i impl;
      improved := true
    | None -> ()
  done;
  choice
