(** Functional-unit allocation and binding (§IV.B; [33], [34]).

    Once scheduled, operations sharing a unit kind must be bound to
    instances.  The binding determines the operand sequences each physical
    unit sees, and hence its switched capacitance: binding two operations
    with highly-correlated operands back-to-back switches little; binding
    uncorrelated ones thrashes the unit's inputs.  This module provides a
    correlation-blind left-edge binding and a power-aware greedy binding
    that minimizes measured operand toggles. *)

type binding = (Dfg.id, int) Hashtbl.t
(** Operation -> instance index (within its unit kind). *)

val left_edge : Dfg.t -> Schedule.delays -> Schedule.t -> binding
(** Classic resource-minimal binding: sort by start step, reuse the first
    instance free at that time. *)

val instances_used : Dfg.t -> binding -> (Modlib.kind * int) list
(** Instances of each kind the binding employs. *)

val operand_toggles :
  Dfg.t -> Schedule.t -> binding
  -> traces:(Dfg.id, (int * int) list) Hashtbl.t -> float
(** Average input-operand bit toggles per DFG evaluation, summed over all
    units: for each unit, operations execute in schedule order and toggles
    are Hamming distances between consecutive operand pairs (plus the
    first load).  The power cost that [33]/[34] minimize. *)

val power_aware :
  Dfg.t -> Schedule.delays -> Schedule.t
  -> traces:(Dfg.id, (int * int) list) Hashtbl.t
  -> max_instances:(Modlib.kind -> int) -> binding
(** Greedy switched-capacitance binding: operations are taken in schedule
    order; each is assigned to the compatible free instance whose last
    operands are closest (Hamming) to its own average operands, or to a new
    instance while the budget allows.  Raises [Invalid_argument] if the
    schedule needs more parallel units than [max_instances] permits. *)

val valid : Dfg.t -> Schedule.delays -> Schedule.t -> binding -> bool
(** No two operations overlap in time on the same instance. *)
