type structure = {
  fu_ports : int;
  reg_ports : int;
  mux_inputs : int;
}

type cost = {
  bus_toggles : float;
  control_toggles : float;
}

let total_toggles c = c.bus_toggles +. c.control_toggles

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let is_op dfg i =
  match Modlib.kind_of_op (Dfg.op dfg i) with Some _ -> true | None -> false

(* Stable source id of a value: its register, a dedicated input register, or
   a constant driver. *)
let source_of dfg reg_binding a =
  match Dfg.op dfg a with
  | Dfg.Input _ ->
    let pos =
      let rec find k = function
        | [] -> raise Not_found
        | (_, i) :: _ when i = a -> k
        | _ :: rest -> find (k + 1) rest
      in
      find 0 (Dfg.inputs dfg)
    in
    -1 - pos
  | Dfg.Const _ -> -1000 - a
  | Dfg.Add | Dfg.Sub | Dfg.Mul | Dfg.Shift_left _ | Dfg.Output _ ->
    (match Hashtbl.find_opt reg_binding a with
    | Some r -> r
    | None -> -2000 - a (* unbound (dead) value: dedicated wire *))

let by_start dfg sched =
  List.sort
    (fun a b ->
      compare
        (Hashtbl.find sched.Schedule.start a, a)
        (Hashtbl.find sched.Schedule.start b, b))
    (List.filter (is_op dfg) (Dfg.nodes dfg))

(* Port descriptors: (key, per-op (source id, value-per-sample array)). *)
let fu_port_streams dfg sched ~fu_binding ~reg_binding ~operands =
  let ports = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let fu = Hashtbl.find fu_binding i in
      let kind = Modlib.kind_of_op (Dfg.op dfg i) in
      let args = Dfg.args dfg i in
      List.iteri
        (fun port a ->
          let key = (kind, fu, port) in
          let src = source_of dfg reg_binding a in
          let words =
            Array.of_list
              (List.map
                 (fun (x, y) -> if port = 0 then x else y)
                 (Hashtbl.find operands i))
          in
          Hashtbl.replace ports key
            (Option.value (Hashtbl.find_opt ports key) ~default:[]
            @ [ (src, words) ]))
        (match args with [ a ] -> [ a ] | [ a; b ] -> [ a; b ] | _ -> []))
    (by_start dfg sched);
  ports

let reg_port_streams dfg d sched ~fu_binding ~reg_binding ~values =
  let ports = Hashtbl.create 16 in
  List.iter
    (fun lt ->
      let v = lt.Reg_bind.var in
      match Hashtbl.find_opt reg_binding v with
      | None -> ()
      | Some r ->
        let fu = Hashtbl.find fu_binding v in
        let kind = Modlib.kind_of_op (Dfg.op dfg v) in
        let src =
          (match kind with
          | Some Modlib.Adder_unit -> 1_000_000
          | Some Modlib.Multiplier_unit -> 2_000_000
          | Some Modlib.Shifter_unit -> 3_000_000
          | None -> 4_000_000)
          + fu
        in
        let words = Array.of_list (Hashtbl.find values v) in
        Hashtbl.replace ports r
          (Option.value (Hashtbl.find_opt ports r) ~default:[]
          @ [ (src, words) ]))
    (Reg_bind.by_birth_public (Reg_bind.lifetimes dfg d sched));
  ports

let port_stats streams =
  Hashtbl.fold
    (fun _ entries (muxes, fanin) ->
      let sources = List.sort_uniq compare (List.map fst entries) in
      let k = List.length sources in
      ((if k >= 2 then muxes + 1 else muxes), fanin + k))
    streams (0, 0)

let derive dfg d sched ~fu_binding ~reg_binding =
  (* Structure needs no data; reuse the stream builders with empty traces. *)
  let dummy_operands = Hashtbl.create 16 in
  List.iter
    (fun i -> if is_op dfg i then Hashtbl.replace dummy_operands i [])
    (Dfg.nodes dfg);
  let dummy_values = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace dummy_values i []) (Dfg.nodes dfg);
  let fu = fu_port_streams dfg sched ~fu_binding ~reg_binding ~operands:dummy_operands in
  let rp =
    reg_port_streams dfg d sched ~fu_binding ~reg_binding ~values:dummy_values
  in
  let fmux, ffan = port_stats fu in
  let rmux, rfan = port_stats rp in
  { fu_ports = fmux; reg_ports = rmux; mux_inputs = ffan + rfan }

let stream_cost nsamples streams =
  let bus = ref 0 and ctl = ref 0 in
  Hashtbl.iter
    (fun _ entries ->
      let last_word = ref None and last_src = ref None in
      for s = 0 to nsamples - 1 do
        List.iter
          (fun (src, words) ->
            let w = words.(s) in
            (match !last_word with
            | Some prev -> bus := !bus + popcount (prev lxor w)
            | None -> bus := !bus + popcount w);
            (match !last_src with
            | Some prev when prev <> src -> ctl := !ctl + 2
            | Some _ -> ()
            | None -> ctl := !ctl + 1);
            last_word := Some w;
            last_src := Some src)
          entries
      done)
    streams;
  (float_of_int !bus, float_of_int !ctl)

let evaluate dfg d sched ~fu_binding ~reg_binding ~samples =
  let n = List.length samples in
  if n = 0 then { bus_toggles = 0.0; control_toggles = 0.0 }
  else begin
    let operands = Dfg.operand_trace dfg samples in
    let values = Dfg.value_trace dfg samples in
    let fu = fu_port_streams dfg sched ~fu_binding ~reg_binding ~operands in
    let rp = reg_port_streams dfg d sched ~fu_binding ~reg_binding ~values in
    let b1, c1 = stream_cost n fu in
    let b2, c2 = stream_cost n rp in
    let per = float_of_int n in
    { bus_toggles = (b1 +. b2) /. per; control_toggles = (c1 +. c2) /. per }
  end
