(** Datapath interconnect power (§IV.B: "the allocation and assignment
    processes ... define the interconnect between them in terms of
    multiplexers and buses", whose switched capacitance [33]/[34] fold
    into the binding objective).

    Given a schedule, a functional-unit binding and a register binding,
    the physical structure is determined: every FU input port is fed by a
    multiplexer over the registers that ever supply it, and every register
    input by a multiplexer over the units that ever write it.  This module
    derives that structure and charges, per DFG evaluation,

    - {e bus} toggles: Hamming distance between consecutive words each mux
      output carries (weighted by the bus capacitance), and
    - {e control} toggles: select-line changes on every mux
      (one-hot selects; two line toggles per source change). *)

type structure = {
  fu_ports : int;          (** multiplexed functional-unit input ports *)
  reg_ports : int;         (** multiplexed register input ports *)
  mux_inputs : int;        (** total multiplexer fan-in (area proxy) *)
}

type cost = {
  bus_toggles : float;     (** word-bit toggles per evaluation, all buses *)
  control_toggles : float; (** select-line toggles per evaluation *)
}

val derive :
  Dfg.t -> Schedule.delays -> Schedule.t
  -> fu_binding:Allocate.binding -> reg_binding:Reg_bind.binding -> structure
(** The multiplexer structure a binding pair implies. *)

val evaluate :
  Dfg.t -> Schedule.delays -> Schedule.t
  -> fu_binding:Allocate.binding -> reg_binding:Reg_bind.binding
  -> samples:(string * int) list list -> cost
(** Simulate the interconnect over the sample set.  DFG inputs are treated
    as dedicated input registers (index [-1 - input_position]). *)

val total_toggles : cost -> float
