type loop_nest = {
  loops : (string * int) list;
  accesses : (string * ((string * int) list -> int)) list;
}

let reorder nest ~order =
  let names = List.map fst nest.loops in
  if List.sort compare order <> List.sort compare names then
    invalid_arg "Memory_opt.reorder: order is not a permutation";
  {
    nest with
    loops = List.map (fun nm -> (nm, List.assoc nm nest.loops)) order;
  }

let trace nest =
  let acc = ref [] in
  let rec run env = function
    | [] ->
      List.iter
        (fun (array_name, addr) -> acc := (array_name, addr env) :: !acc)
        nest.accesses
    | (var, count) :: rest ->
      for v = 0 to count - 1 do
        run ((var, v) :: env) rest
      done
  in
  run [] nest.loops;
  List.rev !acc

type memory_model = {
  buffer_words : int;
  line_words : int;
  onchip_energy : float;
  offchip_energy : float;
}

let default_memory =
  { buffer_words = 64; line_words = 4; onchip_energy = 1.0;
    offchip_energy = 20.0 }

type report = {
  references : int;
  misses : int;
  energy : float;
}

let miss_rate r =
  if r.references = 0 then 0.0
  else float_of_int r.misses /. float_of_int r.references

(* Fully-associative LRU over lines; array names are mapped into disjoint
   address spaces. *)
let simulate model stream =
  if model.buffer_words < model.line_words then
    invalid_arg "Memory_opt.simulate: buffer smaller than a line";
  let lines = model.buffer_words / model.line_words in
  let space = Hashtbl.create 8 in
  let next_base = ref 0 in
  let base_of name =
    match Hashtbl.find_opt space name with
    | Some b -> b
    | None ->
      let b = !next_base in
      next_base := b + 1_000_000;
      Hashtbl.add space name b;
      b
  in
  (* LRU as an association list, most recent first; streams are short. *)
  let lru = ref [] in
  let misses = ref 0 and refs = ref 0 in
  List.iter
    (fun (name, addr) ->
      incr refs;
      let line = (base_of name + addr) / model.line_words in
      if List.mem line !lru then
        lru := line :: List.filter (fun l -> l <> line) !lru
      else begin
        incr misses;
        let kept =
          if List.length !lru >= lines then
            List.filteri (fun k _ -> k < lines - 1) !lru
          else !lru
        in
        lru := line :: kept
      end)
    stream;
  {
    references = !refs;
    misses = !misses;
    energy =
      (float_of_int !refs *. model.onchip_energy)
      +. (float_of_int !misses *. model.offchip_energy);
  }

let matrix_sum_nest ~rows ~cols =
  {
    loops = [ ("i", rows); ("j", cols) ];
    accesses =
      [
        ("A", fun env -> (List.assoc "i" env * cols) + List.assoc "j" env);
        ("B", fun env -> (List.assoc "j" env * rows) + List.assoc "i" env);
      ];
  }

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let best_order model nest =
  let names = List.map fst nest.loops in
  let scored =
    List.map
      (fun order ->
        let r = simulate model (trace (reorder nest ~order)) in
        (order, r.energy))
      (permutations names)
  in
  match
    List.sort (fun (_, a) (_, b) -> Float.compare a b) scored
  with
  | best :: _ -> best
  | [] -> invalid_arg "Memory_opt.best_order: empty nest"
