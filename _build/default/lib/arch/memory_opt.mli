(** Memory-oriented control-flow transformations (§IV.B, [14] Catthoor).

    For multi-dimensional signal processing, memory dominates power through
    (a) the energy of each access, much larger off-chip, and (b) the size of
    the memory that must switch per access.  Loop reordering changes the
    access order, hence locality, hence how many references a small on-chip
    buffer can absorb. *)

type loop_nest = {
  loops : (string * int) list;
      (** loop variables with trip counts, outermost first *)
  accesses : (string * ((string * int) list -> int)) list;
      (** per iteration: (array name, address as a function of the index
          environment) *)
}

val reorder : loop_nest -> order:string list -> loop_nest
(** Permute the loop order.  Raises [Invalid_argument] unless [order] is a
    permutation of the loop variables. *)

val trace : loop_nest -> (string * int) list
(** The (array, address) reference stream the nest generates. *)

type memory_model = {
  buffer_words : int;     (** on-chip buffer capacity (fully associative LRU) *)
  line_words : int;       (** words fetched per miss *)
  onchip_energy : float;  (** per reference served on-chip *)
  offchip_energy : float; (** per off-chip line fetch *)
}

val default_memory : memory_model
(** 64-word LRU buffer, 4-word lines, off-chip access 20x an on-chip one —
    the order-of-magnitude gap the paper describes. *)

type report = {
  references : int;
  misses : int;
  energy : float;
}

val miss_rate : report -> float

val simulate : memory_model -> (string * int) list -> report
(** Run the reference stream through the buffer (addresses of different
    arrays are disjoint by construction of {!matrix_nest}). *)

val matrix_sum_nest : rows:int -> cols:int -> loop_nest
(** The canonical example: [for i (rows) for j (cols): acc += A[i][j] +
    B[j][i]] — A is traversed row-major (friendly) and B column-major
    (hostile); interchanging the loops swaps their roles, and the best
    order depends on the buffer, which is what E16 shows. *)

val best_order : memory_model -> loop_nest -> string list * float
(** Exhaustively try all loop permutations (nests here are small) and
    return the minimum-energy order with its energy. *)
