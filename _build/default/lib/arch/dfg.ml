type op =
  | Input of string
  | Const of int
  | Add
  | Sub
  | Mul
  | Shift_left of int
  | Output of string

type id = int

type node = { nop : op; nargs : id list }

type t = {
  word_width : int;
  mutable node_tbl : node array;
  mutable count : int;
}

let create ?(width = 16) () =
  if width < 1 || width > 30 then invalid_arg "Dfg.create: width in [1, 30]";
  { word_width = width; node_tbl = Array.make 16 { nop = Const 0; nargs = [] }; count = 0 }

let width t = t.word_width

let arity = function
  | Input _ | Const _ -> 0
  | Shift_left _ | Output _ -> 1
  | Add | Sub | Mul -> 2

let add t op args =
  if List.length args <> arity op then invalid_arg "Dfg.add: arity mismatch";
  List.iter
    (fun a -> if a < 0 || a >= t.count then invalid_arg "Dfg.add: unknown arg")
    args;
  if t.count = Array.length t.node_tbl then begin
    let bigger = Array.make (2 * t.count) { nop = Const 0; nargs = [] } in
    Array.blit t.node_tbl 0 bigger 0 t.count;
    t.node_tbl <- bigger
  end;
  t.node_tbl.(t.count) <- { nop = op; nargs = args };
  t.count <- t.count + 1;
  t.count - 1

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Dfg: unknown node";
  t.node_tbl.(i)

let op t i = (get t i).nop
let args t i = (get t i).nargs

let nodes t = List.init t.count (fun i -> i)

let succs t i =
  ignore (get t i);
  List.filter (fun j -> List.mem i (args t j)) (nodes t)

let inputs t =
  List.filter_map
    (fun i -> match op t i with Input nm -> Some (nm, i) | _ -> None)
    (nodes t)

let outputs t =
  List.filter_map
    (fun i -> match op t i with Output nm -> Some (nm, i) | _ -> None)
    (nodes t)

let operation_nodes t =
  List.filter
    (fun i ->
      match op t i with
      | Add | Sub | Mul | Shift_left _ -> true
      | Input _ | Const _ | Output _ -> false)
    (nodes t)

let num_ops t = List.length (operation_nodes t)

let mask t = (1 lsl t.word_width) - 1

let eval_values t env =
  let values = Array.make t.count 0 in
  let m = mask t in
  for i = 0 to t.count - 1 do
    let n = t.node_tbl.(i) in
    let v =
      match n.nop, n.nargs with
      | Input nm, [] ->
        (match List.assoc_opt nm env with
        | Some v -> v land m
        | None -> invalid_arg ("Dfg.eval: missing input " ^ nm))
      | Const c, [] -> c land m
      | Add, [ a; b ] -> (values.(a) + values.(b)) land m
      | Sub, [ a; b ] -> (values.(a) - values.(b)) land m
      | Mul, [ a; b ] -> values.(a) * values.(b) land m
      | Shift_left k, [ a ] -> (values.(a) lsl k) land m
      | Output _, [ a ] -> values.(a)
      | (Input _ | Const _ | Add | Sub | Mul | Shift_left _ | Output _), _ ->
        invalid_arg "Dfg.eval: corrupt arity"
    in
    values.(i) <- v
  done;
  values

let eval t env =
  let values = eval_values t env in
  List.map (fun (nm, i) -> (nm, values.(i))) (outputs t)

let operand_trace t samples =
  let traces = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace traces i []) (operation_nodes t);
  List.iter
    (fun env ->
      let values = eval_values t env in
      List.iter
        (fun i ->
          let operands =
            match args t i with
            | [ a; b ] -> (values.(a), values.(b))
            | [ a ] -> (values.(a), 0)
            | _ -> (0, 0)
          in
          Hashtbl.replace traces i (operands :: Hashtbl.find traces i))
        (operation_nodes t))
    samples;
  Hashtbl.iter (fun i tr -> Hashtbl.replace traces i (List.rev tr)) traces;
  traces

let value_trace t samples =
  let traces = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace traces i []) (nodes t);
  List.iter
    (fun env ->
      let values = eval_values t env in
      List.iter
        (fun i -> Hashtbl.replace traces i (values.(i) :: Hashtbl.find traces i))
        (nodes t))
    samples;
  Hashtbl.iter (fun i tr -> Hashtbl.replace traces i (List.rev tr)) traces;
  traces

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun i ->
      let n = get t i in
      let opname =
        match n.nop with
        | Input nm -> "input " ^ nm
        | Const c -> Printf.sprintf "const %d" c
        | Add -> "add"
        | Sub -> "sub"
        | Mul -> "mul"
        | Shift_left k -> Printf.sprintf "shl %d" k
        | Output nm -> "output " ^ nm
      in
      Format.fprintf ppf "%d: %s%s@," i opname
        (match n.nargs with
        | [] -> ""
        | args ->
          " (" ^ String.concat ", " (List.map string_of_int args) ^ ")"))
    (nodes t);
  Format.pp_close_box ppf ()
