(** Instruction-set simulator with cycle accounting. *)

type t

val create : ?width:int -> unit -> t
(** Word width (default 16) for wrap-around arithmetic. *)

val poke : t -> int -> int -> unit
(** Write a memory word. *)

val peek : t -> int -> int
(** Read a memory word (0 if never written). *)

val reg : t -> Isa.reg -> int
val acc : t -> int

val run : t -> Isa.program -> int
(** Execute (following [Bnz] branches); returns total cycles.  Latencies:
    memory and multiply/MAC instructions take 2 cycles, everything else 1;
    a [Pair] takes the maximum of its halves (that is the compaction win).
    Raises [Invalid_argument] after 2M dynamic instructions (runaway
    loop guard). *)

val executed : t -> Isa.instr list
(** The dynamic instruction stream of the last {!run} (pairs kept intact) —
    the input to {!Energy_model.program_energy}. *)
