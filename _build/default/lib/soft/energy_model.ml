type instr_class = Cls_mem | Cls_alu | Cls_mul | Cls_mac | Cls_ctl

let rec classify = function
  | Isa.Ld _ | Isa.St _ | Isa.Ldx _ | Isa.Stx _ -> Cls_mem
  | Isa.Mul _ -> Cls_mul
  | Isa.Mac _ -> Cls_mac
  | Isa.Li _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _ | Isa.Sub _ | Isa.Shl _
  | Isa.Rdacc _ | Isa.Clracc | Isa.Dec _ -> Cls_alu
  | Isa.Nop | Isa.Bnz _ -> Cls_ctl
  | Isa.Pair (a, b) ->
    let rank = function
      | Cls_mac -> 4 | Cls_mul -> 3 | Cls_mem -> 2 | Cls_alu -> 1 | Cls_ctl -> 0
    in
    let ca = classify a and cb = classify b in
    if rank ca >= rank cb then ca else cb

type profile = {
  profile_name : string;
  base : instr_class -> float;
  overhead : instr_class -> instr_class -> float;
  pair_discount : float;
}

let gp_cpu =
  {
    profile_name = "gp";
    base =
      (function
      | Cls_mem -> 12.0
      | Cls_alu -> 5.0
      | Cls_mul -> 10.0
      | Cls_mac -> 11.0
      | Cls_ctl -> 3.0);
    (* Large cores: circuit-state overhead is small and nearly uniform, so
       reordering buys almost nothing ([46]'s finding). *)
    overhead = (fun a b -> if a = b then 0.0 else 0.4);
    pair_discount = 0.0;
  }

let dsp_cpu =
  {
    profile_name = "dsp";
    base =
      (function
      | Cls_mem -> 6.0
      | Cls_alu -> 2.5
      | Cls_mul -> 7.0
      | Cls_mac -> 7.5
      | Cls_ctl -> 1.5);
    overhead =
      (fun a b ->
        if a = b then 0.0
        else
          match a, b with
          | (Cls_mem, Cls_mac | Cls_mac, Cls_mem) -> 3.5
          | (Cls_mem, Cls_mul | Cls_mul, Cls_mem) -> 3.0
          | (Cls_alu, Cls_mac | Cls_mac, Cls_alu) -> 2.0
          | (Cls_alu, Cls_mul | Cls_mul, Cls_alu) -> 1.8
          | (Cls_mul, Cls_mac | Cls_mac, Cls_mul) -> 1.0
          | _, _ -> 1.0);
    pair_discount = 4.0;
  }

let rec instr_energy p = function
  | Isa.Pair (a, b) ->
    instr_energy p a +. instr_energy p b -. p.pair_discount
  | i -> p.base (classify i)

let program_energy p stream =
  let rec go prev acc = function
    | [] -> acc
    | i :: rest ->
      let e = instr_energy p i in
      let o =
        match prev with
        | None -> 0.0
        | Some pc -> p.overhead pc (classify i)
      in
      go (Some (classify i)) (acc +. e +. o) rest
  in
  go None 0.0 stream

let energy_per_cycle p stream ~cycles =
  if cycles <= 0 then 0.0
  else program_energy p stream /. float_of_int cycles
