(** A small load/store ISA with a DSP extension (§V).

    Eight general registers, a dedicated multiply-accumulate accumulator,
    and word-addressed memory.  The DSP extension adds [Mac] and
    instruction {e pairing} — a load and a MAC issued as one compacted
    instruction, the feature [23] exploits on embedded DSPs. *)

type reg = int
(** 0..7. *)

type instr =
  | Li of reg * int          (** load immediate *)
  | Ld of reg * int          (** load from memory address *)
  | St of int * reg          (** store to memory address *)
  | Ldx of reg * reg         (** dst <- mem[addr register] *)
  | Stx of reg * reg         (** mem[addr register] <- src *)
  | Mov of reg * reg
  | Add of reg * reg * reg   (** dst, src1, src2 *)
  | Addi of reg * reg * int  (** dst <- src + immediate *)
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Shl of reg * reg * int
  | Mac of reg * reg         (** acc <- acc + src1 * src2 *)
  | Clracc
  | Rdacc of reg             (** dst <- acc *)
  | Dec of reg               (** dst <- dst - 1 *)
  | Bnz of reg * int         (** branch to absolute index if reg <> 0 *)
  | Pair of instr * instr    (** DSP compaction; see {!pairable} *)
  | Nop

type program = instr list
(** Code with optional backward branches ([Bnz]); the compiler emits only
    straight-line programs, hand-built streaming kernels (see {!Kernels})
    use loops. *)

val pairable : instr -> instr -> bool
(** Only [Ld] paired with [Mac], and only when the load's destination is
    not a MAC source (the MAC reads the pre-load value otherwise, which the
    compacted hardware does not support). *)

val defs : instr -> reg list
(** Registers written (accumulator excluded). *)

val uses : instr -> reg list

val reads_acc : instr -> bool
val writes_acc : instr -> bool
val mem_addr : instr -> int option
(** Statically-known address touched, if any (indexed accesses return
    [None]). *)

val touches_memory : instr -> bool
(** Any load or store, indexed or not. *)

val is_branch : instr -> bool

val validate : program -> unit
(** Raises [Invalid_argument] on register indexes outside 0..7, illegal
    pairs, or branch targets outside the program. *)

val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> program -> unit
