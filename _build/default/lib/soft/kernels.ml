type fir_layout = {
  x_base : int;
  c_base : int;
  y_base : int;
}

let fir_layout ~taps ~samples =
  { x_base = 0; c_base = samples + taps + 8; y_base = (2 * (samples + taps)) + 16 }

let check taps samples =
  if taps < 1 || taps > 6 then invalid_arg "Kernels: taps in [1, 6]";
  if samples < 1 then invalid_arg "Kernels: samples >= 1"

let reference_fir ~taps ~samples ~coeffs ~xs ~width =
  if List.length coeffs <> taps then invalid_arg "Kernels: coefficient count";
  if List.length xs < samples + taps - 1 then
    invalid_arg "Kernels: sample buffer too short";
  let m = (1 lsl width) - 1 in
  let x = Array.of_list xs and c = Array.of_list coeffs in
  List.init samples (fun i ->
      let acc = ref 0 in
      for j = 0 to taps - 1 do
        acc := (!acc + (c.(j) * x.(i + j))) land m
      done;
      !acc)

(* Registers: r0 loop counter, r1 window base, r2 y pointer, r3 walking x
   cursor, operand banks (r4, r5) and (r6, r7) alternating per tap.

   The body is software-pipelined: tap j's loads issue before tap j-1's
   MAC, so a Ldx sits next to an independent Mac of the other register
   bank — exactly the adjacency the DSP pairing peephole packs. *)
let fir_body ~taps ~(layout : fir_layout) =
  let bank j = if j mod 2 = 0 then (4, 5) else (6, 7) in
  let per_tap j =
    let x, c = bank j in
    let load =
      [ Isa.Ldx (x, 3) ]
      @ (if j > 0 then
           let px, pc = bank (j - 1) in
           [ Isa.Mac (px, pc) ]
         else [])
      @ [ Isa.Ld (c, layout.c_base + j); Isa.Addi (3, 3, 1) ]
    in
    load
  in
  let lx, lc = bank (taps - 1) in
  [ Isa.Clracc; Isa.Addi (3, 1, 0) ]
  @ List.concat (List.init taps per_tap)
  @ [ Isa.Mac (lx, lc); Isa.Rdacc 4; Isa.Stx (2, 4); Isa.Addi (1, 1, 1);
      Isa.Addi (2, 2, 1) ]

(* Ld/Ldx followed or preceded by an independent Mac packs into a Pair. *)
let pair_peephole body =
  let independent a b =
    let inter xs ys = List.exists (fun x -> List.mem x ys) xs in
    (not (inter (Isa.defs a) (Isa.uses b)))
    && (not (inter (Isa.uses a) (Isa.defs b)))
    && not (inter (Isa.defs a) (Isa.defs b))
  in
  let rec go = function
    | a :: b :: rest when Isa.pairable a b && independent a b ->
      Isa.Pair (a, b) :: go rest
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go body

let streaming_fir ~taps ~samples ?(pair = false) () =
  check taps samples;
  let layout = fir_layout ~taps ~samples in
  let body = fir_body ~taps ~layout in
  let body = if pair then pair_peephole body else body in
  let prologue =
    [ Isa.Li (0, samples); Isa.Li (1, layout.x_base); Isa.Li (2, layout.y_base) ]
  in
  let loop_start = List.length prologue in
  let program =
    prologue @ body @ [ Isa.Dec 0; Isa.Bnz (0, loop_start) ]
  in
  Isa.validate program;
  (program, layout)

let unrolled_fir ~taps ~samples =
  check taps samples;
  let layout = fir_layout ~taps ~samples in
  let per_sample i =
    [ Isa.Clracc ]
    @ List.concat
        (List.init taps (fun j ->
             [ Isa.Ld (4, layout.x_base + i + j);
               Isa.Ld (5, layout.c_base + j);
               Isa.Mac (4, 5) ]))
    @ [ Isa.Rdacc 4; Isa.St (layout.y_base + i, 4) ]
  in
  let program = List.concat (List.init samples per_sample) in
  Isa.validate program;
  (program, layout)

let load_fir_inputs m layout ~coeffs ~xs =
  List.iteri (fun j c -> Machine.poke m (layout.c_base + j) c) coeffs;
  List.iteri (fun i x -> Machine.poke m (layout.x_base + i) x) xs

let read_fir_outputs m layout ~samples =
  List.init samples (fun i -> Machine.peek m (layout.y_base + i))
