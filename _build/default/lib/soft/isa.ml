type reg = int

type instr =
  | Li of reg * int
  | Ld of reg * int
  | St of int * reg
  | Ldx of reg * reg
  | Stx of reg * reg
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * int
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Shl of reg * reg * int
  | Mac of reg * reg
  | Clracc
  | Rdacc of reg
  | Dec of reg
  | Bnz of reg * int
  | Pair of instr * instr
  | Nop

type program = instr list

let rec defs = function
  | Li (d, _) | Ld (d, _) | Ldx (d, _) | Mov (d, _) | Add (d, _, _)
  | Addi (d, _, _) | Sub (d, _, _) | Mul (d, _, _) | Shl (d, _, _)
  | Rdacc d | Dec d ->
    [ d ]
  | St _ | Stx _ | Mac _ | Clracc | Nop | Bnz _ -> []
  | Pair (a, b) -> defs a @ defs b

let rec uses = function
  | Li _ | Ld _ | Clracc | Nop -> []
  | St (_, s) | Mov (_, s) | Shl (_, s, _) | Ldx (_, s) | Addi (_, s, _)
  | Bnz (s, _) ->
    [ s ]
  | Stx (a, s) -> [ a; s ]
  | Add (_, a, b) | Sub (_, a, b) | Mul (_, a, b) | Mac (a, b) -> [ a; b ]
  | Dec d -> [ d ]
  | Rdacc _ -> []
  | Pair (a, b) -> uses a @ uses b

let rec reads_acc = function
  | Mac _ | Rdacc _ -> true
  | Pair (a, b) -> reads_acc a || reads_acc b
  | Li _ | Ld _ | St _ | Ldx _ | Stx _ | Mov _ | Add _ | Addi _ | Sub _
  | Mul _ | Shl _ | Clracc | Nop | Dec _ | Bnz _ ->
    false

let rec writes_acc = function
  | Mac _ | Clracc -> true
  | Pair (a, b) -> writes_acc a || writes_acc b
  | Li _ | Ld _ | St _ | Ldx _ | Stx _ | Mov _ | Add _ | Addi _ | Sub _
  | Mul _ | Shl _ | Rdacc _ | Nop | Dec _ | Bnz _ ->
    false

let rec mem_addr = function
  | Ld (_, a) | St (a, _) -> Some a
  | Pair (x, y) ->
    (match mem_addr x with Some a -> Some a | None -> mem_addr y)
  | Li _ | Ldx _ | Stx _ | Mov _ | Add _ | Addi _ | Sub _ | Mul _ | Shl _
  | Mac _ | Clracc | Rdacc _ | Nop | Dec _ | Bnz _ ->
    None

let rec touches_memory = function
  | Ld _ | St _ | Ldx _ | Stx _ -> true
  | Pair (a, b) -> touches_memory a || touches_memory b
  | Li _ | Mov _ | Add _ | Addi _ | Sub _ | Mul _ | Shl _ | Mac _ | Clracc
  | Rdacc _ | Nop | Dec _ | Bnz _ ->
    false

let is_branch = function Bnz _ -> true | _ -> false

let pairable a b =
  match a, b with
  | Ld (d, _), Mac (s1, s2) | Ldx (d, _), Mac (s1, s2) -> d <> s1 && d <> s2
  | Mac (s1, s2), Ld (d, _) | Mac (s1, s2), Ldx (d, _) -> d <> s1 && d <> s2
  | _, _ -> false

let check_reg r =
  if r < 0 || r > 7 then invalid_arg "Isa: register out of range"

let rec validate_instr n = function
  | Li (d, _) | Ld (d, _) | Rdacc d | Dec d -> check_reg d
  | St (_, s) -> check_reg s
  | Ldx (d, a) | Stx (a, d) ->
    check_reg d;
    check_reg a
  | Mov (d, s) | Addi (d, s, _) ->
    check_reg d;
    check_reg s
  | Add (d, a, b) | Sub (d, a, b) | Mul (d, a, b) ->
    check_reg d;
    check_reg a;
    check_reg b
  | Shl (d, s, k) ->
    check_reg d;
    check_reg s;
    if k < 0 || k > 30 then invalid_arg "Isa: shift amount out of range"
  | Mac (a, b) ->
    check_reg a;
    check_reg b
  | Bnz (s, target) ->
    check_reg s;
    if target < 0 || target >= n then
      invalid_arg "Isa: branch target outside the program"
  | Pair (a, b) ->
    validate_instr n a;
    validate_instr n b;
    if not (pairable a b) then invalid_arg "Isa: illegal pair"
  | Clracc | Nop -> ()

let validate program =
  let n = List.length program in
  List.iter (validate_instr n) program

let rec pp_instr ppf = function
  | Ldx (d, a) -> Format.fprintf ppf "ldx r%d, [r%d]" d a
  | Stx (a, s) -> Format.fprintf ppf "stx [r%d], r%d" a s
  | Addi (d, s, v) -> Format.fprintf ppf "addi r%d, r%d, %d" d s v
  | Dec d -> Format.fprintf ppf "dec r%d" d
  | Bnz (s, t) -> Format.fprintf ppf "bnz r%d, %d" s t
  | Li (d, v) -> Format.fprintf ppf "li r%d, %d" d v
  | Ld (d, a) -> Format.fprintf ppf "ld r%d, [%d]" d a
  | St (a, s) -> Format.fprintf ppf "st [%d], r%d" a s
  | Mov (d, s) -> Format.fprintf ppf "mov r%d, r%d" d s
  | Add (d, a, b) -> Format.fprintf ppf "add r%d, r%d, r%d" d a b
  | Sub (d, a, b) -> Format.fprintf ppf "sub r%d, r%d, r%d" d a b
  | Mul (d, a, b) -> Format.fprintf ppf "mul r%d, r%d, r%d" d a b
  | Shl (d, s, k) -> Format.fprintf ppf "shl r%d, r%d, %d" d s k
  | Mac (a, b) -> Format.fprintf ppf "mac r%d, r%d" a b
  | Clracc -> Format.fprintf ppf "clracc"
  | Rdacc d -> Format.fprintf ppf "rdacc r%d" d
  | Pair (a, b) -> Format.fprintf ppf "{%a || %a}" pp_instr a pp_instr b
  | Nop -> Format.fprintf ppf "nop"

let pp ppf program =
  Format.pp_open_vbox ppf 0;
  List.iter (fun i -> Format.fprintf ppf "%a@," pp_instr i) program;
  Format.pp_close_box ppf ()
