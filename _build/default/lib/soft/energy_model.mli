(** Instruction-level power models (§V; [46] Tiwari et al., [23] Lee et al.).

    The measurement methodology of [46] assigns each instruction a {e base
    energy cost} (measured with the instruction in a loop) and each ordered
    instruction pair a {e circuit-state overhead} (the extra current when
    two different instructions alternate).  Program energy is the sum of
    base costs plus pairwise overheads along the dynamic instruction
    stream.

    Two calibrated CPU profiles reproduce the paper's findings: on the
    large general-purpose core the overhead matrix is nearly flat, so
    instruction {e scheduling} barely matters and energy tracks cycle count
    ("faster is lower energy"); on the small DSP core the overhead between
    unit classes is comparable to base costs, so scheduling and packing
    matter. *)

type instr_class = Cls_mem | Cls_alu | Cls_mul | Cls_mac | Cls_ctl

val classify : Isa.instr -> instr_class
(** A [Pair] classifies as its higher-energy half. *)

type profile = {
  profile_name : string;
  base : instr_class -> float;     (** nJ per instruction *)
  overhead : instr_class -> instr_class -> float;
      (** circuit-state cost when class [b] follows class [a] *)
  pair_discount : float;
      (** energy saved by issuing a legal pair as one instruction
          (shared fetch/decode); 0 if pairing is unsupported *)
}

val gp_cpu : profile
(** General-purpose core: high base costs, flat overhead. *)

val dsp_cpu : profile
(** Embedded DSP: low base costs, strong class-switch overhead, pairing
    supported. *)

val instr_energy : profile -> Isa.instr -> float
(** Base energy (pairs get both halves minus the discount). *)

val program_energy : profile -> Isa.instr list -> float
(** Total energy of a dynamic instruction stream: bases plus inter-
    instruction overheads. *)

val energy_per_cycle : profile -> Isa.instr list -> cycles:int -> float
(** Average power proxy. *)
