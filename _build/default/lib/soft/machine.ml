type t = {
  width : int;
  regs : int array;
  mutable acc_v : int;
  mem : (int, int) Hashtbl.t;
  mutable trace : Isa.instr list; (* reversed *)
}

let create ?(width = 16) () =
  if width < 1 || width > 30 then invalid_arg "Machine.create: width in [1,30]";
  { width; regs = Array.make 8 0; acc_v = 0; mem = Hashtbl.create 64;
    trace = [] }

let mask t = (1 lsl t.width) - 1

let poke t addr v = Hashtbl.replace t.mem addr (v land mask t)
let peek t addr = Option.value (Hashtbl.find_opt t.mem addr) ~default:0
let reg t r = t.regs.(r)
let acc t = t.acc_v

let rec latency = function
  | Isa.Ld _ | Isa.St _ | Isa.Ldx _ | Isa.Stx _ | Isa.Mul _ | Isa.Mac _ -> 2
  | Isa.Pair (a, b) -> max (latency a) (latency b)
  | Isa.Li _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _ | Isa.Sub _ | Isa.Shl _
  | Isa.Clracc | Isa.Rdacc _ | Isa.Nop | Isa.Dec _ | Isa.Bnz _ -> 1

(* [exec] returns the next-pc delta relative to fallthrough (branches
   return an absolute target through [Jump]). *)
exception Jump of int

let rec exec t i =
  let m = mask t in
  match i with
  | Isa.Ldx (d, a) -> t.regs.(d) <- peek t t.regs.(a)
  | Isa.Stx (a, s) -> poke t t.regs.(a) t.regs.(s)
  | Isa.Addi (d, s, v) -> t.regs.(d) <- (t.regs.(s) + v) land m
  | Isa.Dec d -> t.regs.(d) <- (t.regs.(d) - 1) land m
  | Isa.Bnz (s, target) -> if t.regs.(s) <> 0 then raise (Jump target)
  | Isa.Li (d, v) -> t.regs.(d) <- v land m
  | Isa.Ld (d, a) -> t.regs.(d) <- peek t a
  | Isa.St (a, s) -> poke t a t.regs.(s)
  | Isa.Mov (d, s) -> t.regs.(d) <- t.regs.(s)
  | Isa.Add (d, a, b) -> t.regs.(d) <- (t.regs.(a) + t.regs.(b)) land m
  | Isa.Sub (d, a, b) -> t.regs.(d) <- (t.regs.(a) - t.regs.(b)) land m
  | Isa.Mul (d, a, b) -> t.regs.(d) <- t.regs.(a) * t.regs.(b) land m
  | Isa.Shl (d, s, k) -> t.regs.(d) <- (t.regs.(s) lsl k) land m
  | Isa.Mac (a, b) -> t.acc_v <- (t.acc_v + (t.regs.(a) * t.regs.(b))) land m
  | Isa.Clracc -> t.acc_v <- 0
  | Isa.Rdacc d -> t.regs.(d) <- t.acc_v
  | Isa.Pair (a, b) ->
    (* Both halves read pre-instruction state; pairable guarantees no
       conflict, so sequential execution is equivalent. *)
    exec t a;
    exec t b
  | Isa.Nop -> ()

let fuel_limit = 2_000_000

let run t program =
  Isa.validate program;
  t.trace <- [];
  let code = Array.of_list program in
  let cycles = ref 0 in
  let pc = ref 0 in
  let fuel = ref fuel_limit in
  while !pc < Array.length code do
    decr fuel;
    if !fuel <= 0 then invalid_arg "Machine.run: instruction budget exceeded";
    let i = code.(!pc) in
    cycles := !cycles + latency i;
    t.trace <- i :: t.trace;
    (match exec t i with
    | () -> incr pc
    | exception Jump target -> pc := target)
  done;
  !cycles

let executed t = List.rev t.trace
