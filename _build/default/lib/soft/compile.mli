(** A small compiler from data-flow graphs to the ISA, with the power-
    relevant choices of §V exposed as options:

    - {e instruction selection} ([45]): register temporaries vs memory
      temporaries; MAC selection for sum-of-products; strength reduction of
      constant multiplies;
    - {e register allocation}: register operands are much cheaper than
      memory operands, so fewer spills means less energy;
    - {e cold scheduling} ([40]): reorder independent instructions to
      minimize the circuit-state overhead between neighbours;
    - {e instruction packing} ([23]): combine a load and a MAC into one
      paired instruction on the DSP. *)

type options = {
  memory_temps : bool;   (** naive selection: all temporaries in memory *)
  registers : int;       (** register budget (3..8) when not memory_temps *)
  use_mac : bool;        (** select MAC for sum-of-products outputs *)
  strength_reduction : bool;
  cold_schedule : Energy_model.profile option;
      (** reorder to minimize that profile's overhead *)
  pair : bool;           (** pack Ld/Mac pairs (DSP only) *)
}

val naive : options
(** Memory temporaries, no MAC, no scheduling, no pairing — the untuned
    compiler of the paper's narrative. *)

val optimized : ?profile:Energy_model.profile -> unit -> options
(** Registers, MAC, strength reduction; cold scheduling and pairing when a
    DSP profile is supplied. *)

type compiled = {
  program : Isa.program;
  input_addrs : (string * int) list;
  output_addrs : (string * int) list;
}

val compile : options -> Dfg.t -> compiled
(** Raises [Invalid_argument] for register budgets outside 3..8. *)

val run :
  compiled -> ?width:int -> (string * int) list -> (string * int) list * int
(** Execute on a fresh machine with the given named inputs; returns named
    outputs and cycle count. *)

val verify :
  compiled -> Dfg.t -> rng:Lowpower.Rng.t -> samples:int -> bool
(** Compiled code agrees with DFG semantics on random inputs. *)

val measure :
  compiled -> Energy_model.profile -> ?width:int -> (string * int) list
  -> float * int
(** [(energy, cycles)] of one execution under the given CPU profile. *)
