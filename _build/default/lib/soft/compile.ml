type options = {
  memory_temps : bool;
  registers : int;
  use_mac : bool;
  strength_reduction : bool;
  cold_schedule : Energy_model.profile option;
  pair : bool;
}

let naive =
  {
    memory_temps = true;
    registers = 8;
    use_mac = false;
    strength_reduction = false;
    cold_schedule = None;
    pair = false;
  }

let optimized ?profile () =
  {
    memory_temps = false;
    registers = 8;
    use_mac = true;
    strength_reduction = true;
    cold_schedule = profile;
    pair = (match profile with Some p -> p.Energy_model.pair_discount > 0.0 | None -> false);
  }

type compiled = {
  program : Isa.program;
  input_addrs : (string * int) list;
  output_addrs : (string * int) list;
}

(* ---- code generation ---- *)

type layout = {
  input_of : string -> int;
  mutable next_slot : int;
  slots : (Dfg.id, int) Hashtbl.t; (* memory slot per DFG value *)
}

let slot_of layout i =
  match Hashtbl.find_opt layout.slots i with
  | Some a -> a
  | None ->
    let a = layout.next_slot in
    layout.next_slot <- a + 1;
    Hashtbl.add layout.slots i a;
    a

(* Naive selection: operands always loaded from memory into r0/r1, result
   stored back.  One memory slot per DFG node. *)
let gen_memory_temps opts dfg layout =
  let code = ref [] in
  let emit i = code := i :: !code in
  let addr_of_value v = slot_of layout v in
  List.iter
    (fun i ->
      match Dfg.op dfg i, Dfg.args dfg i with
      | Dfg.Input nm, [] ->
        emit (Isa.Ld (0, layout.input_of nm));
        emit (Isa.St (addr_of_value i, 0))
      | Dfg.Const c, [] ->
        emit (Isa.Li (0, c));
        emit (Isa.St (addr_of_value i, 0))
      | Dfg.Add, [ a; b ] | Dfg.Sub, [ a; b ] | Dfg.Mul, [ a; b ] ->
        emit (Isa.Ld (0, addr_of_value a));
        emit (Isa.Ld (1, addr_of_value b));
        (match Dfg.op dfg i with
        | Dfg.Add -> emit (Isa.Add (2, 0, 1))
        | Dfg.Sub -> emit (Isa.Sub (2, 0, 1))
        | Dfg.Mul -> emit (Isa.Mul (2, 0, 1))
        | _ -> assert false);
        emit (Isa.St (addr_of_value i, 2))
      | Dfg.Shift_left k, [ a ] ->
        emit (Isa.Ld (0, addr_of_value a));
        if opts.strength_reduction then emit (Isa.Shl (2, 0, k))
        else begin
          emit (Isa.Li (1, 1 lsl k));
          emit (Isa.Mul (2, 0, 1))
        end;
        emit (Isa.St (addr_of_value i, 2))
      | Dfg.Output _, [ a ] ->
        emit (Isa.Ld (0, addr_of_value a));
        emit (Isa.St (addr_of_value i, 0))
      | (Dfg.Input _ | Dfg.Const _ | Dfg.Add | Dfg.Sub | Dfg.Mul
        | Dfg.Shift_left _ | Dfg.Output _), _ ->
        invalid_arg "Compile: corrupt DFG arity")
    (Dfg.nodes dfg);
  List.rev !code

(* Register selection with Belady spilling.

   Liveness runs on an explicit emission schedule, not on DFG node ids:
   MAC-consumed multiplies are emitted at their accumulation root, so their
   operands' last uses happen there, regardless of where the Mul node sits
   in the DFG numbering. *)

type emission =
  | Emit_plain of Dfg.id                    (* ordinary op; defines its id *)
  | Emit_mac of Dfg.id * Dfg.id             (* one product: uses x, y *)
  | Emit_mac_root of Dfg.id                 (* Rdacc; defines the root id *)

let gen_registers opts dfg layout =
  if opts.registers < 3 || opts.registers > 8 then
    invalid_arg "Compile: register budget must be in 3..8";
  let code = ref [] in
  let emit i = code := i :: !code in
  let raw_use_count =
    let uses = Hashtbl.create 32 in
    List.iter
      (fun i ->
        List.iter
          (fun a ->
            Hashtbl.replace uses a
              (1 + Option.value (Hashtbl.find_opt uses a) ~default:0))
          (Dfg.args dfg i))
      (Dfg.nodes dfg);
    fun v -> Option.value (Hashtbl.find_opt uses v) ~default:0
  in
  (* MAC selection: single-use Add-trees over single-use Mul leaves. *)
  let mac_products i =
    if not opts.use_mac then None
    else begin
      let rec flatten i ~root =
        match Dfg.op dfg i with
        | Dfg.Add when root || raw_use_count i = 1 ->
          (match Dfg.args dfg i with
          | [ a; b ] ->
            (match flatten a ~root:false, flatten b ~root:false with
            | Some xs, Some ys -> Some (xs @ ys)
            | _, _ -> None)
          | _ -> None)
        | Dfg.Mul when raw_use_count i = 1 ->
          (match Dfg.args dfg i with
          | [ a; b ] -> Some [ (i, a, b) ]
          | _ -> None)
        | Dfg.Input _ | Dfg.Const _ | Dfg.Add | Dfg.Sub | Dfg.Mul
        | Dfg.Shift_left _ | Dfg.Output _ -> None
      in
      match flatten i ~root:true with
      | Some products when List.length products >= 2 -> Some products
      | Some _ | None -> None
    end
  in
  (* Claim MAC trees, outermost roots first. *)
  let mac_roots : (Dfg.id, (Dfg.id * Dfg.id * Dfg.id) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let consumed : (Dfg.id, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec mark_consumed i ~root =
    if not root then Hashtbl.replace consumed i ();
    match Dfg.op dfg i with
    | Dfg.Add when root || raw_use_count i = 1 ->
      List.iter (fun a -> mark_consumed a ~root:false) (Dfg.args dfg i)
    | Dfg.Mul | Dfg.Input _ | Dfg.Const _ | Dfg.Add | Dfg.Sub
    | Dfg.Shift_left _ | Dfg.Output _ -> ()
  in
  List.iter
    (fun i ->
      if not (Hashtbl.mem consumed i) then
        match mac_products i with
        | Some products ->
          Hashtbl.replace mac_roots i products;
          mark_consumed i ~root:true
        | None -> ())
    (List.rev (Dfg.nodes dfg));
  (* Emission schedule: consumed nodes vanish; a root expands into its
     products (in Mul-id order) followed by the accumulator read. *)
  let schedule =
    List.concat_map
      (fun i ->
        if Hashtbl.mem consumed i then []
        else
          match Hashtbl.find_opt mac_roots i with
          | Some products ->
            let products =
              List.sort (fun (a, _, _) (b, _, _) -> compare a b) products
            in
            List.map (fun (_, x, y) -> Emit_mac (x, y)) products
            @ [ Emit_mac_root i ]
          | None -> [ Emit_plain i ])
      (Dfg.nodes dfg)
  in
  (* Use times per value, on the schedule's clock. *)
  let uses : (Dfg.id, int list) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun t item ->
      let operands =
        match item with
        | Emit_plain i -> Dfg.args dfg i
        | Emit_mac (x, y) -> [ x; y ]
        | Emit_mac_root _ -> []
      in
      List.iter
        (fun a ->
          Hashtbl.replace uses a
            (t :: Option.value (Hashtbl.find_opt uses a) ~default:[]))
        operands)
    schedule;
  (* First use at or after [point]. *)
  let next_use_from point v =
    let rec first = function
      | [] -> max_int
      | u :: rest -> if u >= point then u else first rest
    in
    first (List.rev (Option.value (Hashtbl.find_opt uses v) ~default:[]))
  in
  let in_reg : (Dfg.id, Isa.reg) Hashtbl.t = Hashtbl.create 8 in
  let reg_holds = Array.make 8 (-1) in
  let spilled : (Dfg.id, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Round-robin starting point: spreading consecutive values over
     different registers leaves the scheduler and the pairing pass freedom
     (a load into the register a MAC just read cannot be paired with it). *)
  let rr = ref 0 in
  let free_reg point ~avoid =
    let find () =
      let n = opts.registers in
      let rec go k =
        if k >= n then None
        else begin
          let r = (!rr + k) mod n in
          if reg_holds.(r) < 0 && not (List.mem r avoid) then Some r
          else go (k + 1)
        end
      in
      let r = go 0 in
      (match r with Some r -> rr := (r + 1) mod n | None -> ());
      r
    in
    match find () with
    | Some r -> r
    | None ->
      (* Evict the value with the farthest next use (Belady). *)
      let victim = ref (-1) and victim_use = ref (-1) in
      for r = 0 to opts.registers - 1 do
        if not (List.mem r avoid) then begin
          let u = next_use_from point reg_holds.(r) in
          if u > !victim_use then begin
            victim_use := u;
            victim := r
          end
        end
      done;
      let r = !victim in
      if r < 0 then invalid_arg "Compile: register budget too small";
      let v = reg_holds.(r) in
      if v >= 0 then begin
        if not (Hashtbl.mem spilled v) && next_use_from point v < max_int
        then begin
          emit (Isa.St (slot_of layout v, r));
          Hashtbl.replace spilled v ()
        end;
        Hashtbl.remove in_reg v
      end;
      r
  in
  let assign point v ~avoid =
    let r = free_reg point ~avoid in
    reg_holds.(r) <- v;
    Hashtbl.replace in_reg v r;
    r
  in
  let materialize point v ~avoid =
    match Hashtbl.find_opt in_reg v with
    | Some r -> r
    | None ->
      let r = assign point v ~avoid in
      emit (Isa.Ld (r, slot_of layout v));
      r
  in
  let release_dead point vs =
    List.iter
      (fun v ->
        if next_use_from (point + 1) v = max_int then
          match Hashtbl.find_opt in_reg v with
          | Some r ->
            reg_holds.(r) <- -1;
            Hashtbl.remove in_reg v
          | None -> ())
      vs
  in
  let mac_open = ref false in
  List.iteri
    (fun t item ->
      match item with
      | Emit_mac (x, y) ->
        if not !mac_open then begin
          emit Isa.Clracc;
          mac_open := true
        end;
        let rx = materialize t x ~avoid:[] in
        let ry = materialize t y ~avoid:[ rx ] in
        emit (Isa.Mac (rx, ry));
        release_dead t [ x; y ]
      | Emit_mac_root i ->
        mac_open := false;
        let r = assign t i ~avoid:[] in
        emit (Isa.Rdacc r)
      | Emit_plain i ->
        (match Dfg.op dfg i, Dfg.args dfg i with
        | Dfg.Input nm, [] ->
          let r = assign t i ~avoid:[] in
          emit (Isa.Ld (r, layout.input_of nm))
        | Dfg.Const c, [] ->
          let r = assign t i ~avoid:[] in
          emit (Isa.Li (r, c))
        | (Dfg.Add | Dfg.Sub | Dfg.Mul), [ a; b ] ->
          let ra = materialize t a ~avoid:[] in
          let rb = materialize t b ~avoid:[ ra ] in
          release_dead t [ a; b ];
          let rd = assign t i ~avoid:[ ra; rb ] in
          (match Dfg.op dfg i with
          | Dfg.Add -> emit (Isa.Add (rd, ra, rb))
          | Dfg.Sub -> emit (Isa.Sub (rd, ra, rb))
          | Dfg.Mul -> emit (Isa.Mul (rd, ra, rb))
          | _ -> assert false)
        | Dfg.Shift_left k, [ a ] ->
          let ra = materialize t a ~avoid:[] in
          release_dead t [ a ];
          let rd = assign t i ~avoid:[ ra ] in
          if opts.strength_reduction then emit (Isa.Shl (rd, ra, k))
          else begin
            let rc = free_reg t ~avoid:[ ra; rd ] in
            emit (Isa.Li (rc, 1 lsl k));
            emit (Isa.Mul (rd, ra, rc))
          end
        | Dfg.Output _, [ a ] ->
          let ra = materialize t a ~avoid:[] in
          release_dead t [ a ];
          emit (Isa.St (slot_of layout i, ra))
        | (Dfg.Input _ | Dfg.Const _ | Dfg.Add | Dfg.Sub | Dfg.Mul
          | Dfg.Shift_left _ | Dfg.Output _), _ ->
          invalid_arg "Compile: corrupt DFG arity"))
    schedule;
  List.rev !code

(* ---- cold scheduling ([40]): dependence-preserving greedy reorder ---- *)

let depends before after =
  let defs_b = Isa.defs before and uses_b = Isa.uses before in
  let defs_a = Isa.defs after and uses_a = Isa.uses after in
  let inter xs ys = List.exists (fun x -> List.mem x ys) xs in
  inter defs_b uses_a (* RAW *)
  || inter uses_b defs_a (* WAR *)
  || inter defs_b defs_a (* WAW *)
  || (Isa.writes_acc before && (Isa.reads_acc after || Isa.writes_acc after))
  || (Isa.reads_acc before && Isa.writes_acc after)
  || (match Isa.mem_addr before, Isa.mem_addr after with
     | Some x, Some y when x = y ->
       (match before, after with
       | Isa.Ld _, Isa.Ld _ -> false
       | _, _ -> true)
     | _, _ -> false)

let cold_schedule profile program =
  let arr = Array.of_list program in
  let n = Array.length arr in
  let scheduled = Array.make n false in
  let order = ref [] in
  let prev_class = ref None in
  for _ = 1 to n do
    (* Ready = unscheduled with all dependence predecessors scheduled. *)
    let best = ref (-1) and best_cost = ref infinity in
    for i = 0 to n - 1 do
      if not scheduled.(i) then begin
        let ready = ref true in
        for j = 0 to i - 1 do
          if (not scheduled.(j)) && depends arr.(j) arr.(i) then ready := false
        done;
        if !ready then begin
          let c = Energy_model.classify arr.(i) in
          let cost =
            match !prev_class with
            | None -> 0.0
            | Some pc -> profile.Energy_model.overhead pc c
          in
          if cost < !best_cost then begin
            best_cost := cost;
            best := i
          end
        end
      end
    done;
    assert (!best >= 0);
    scheduled.(!best) <- true;
    prev_class := Some (Energy_model.classify arr.(!best));
    order := arr.(!best) :: !order
  done;
  List.rev !order

(* ---- pairing peephole ([23]) ---- *)

let pair_pass program =
  let rec go = function
    | a :: b :: rest when Isa.pairable a b && not (depends a b) ->
      Isa.Pair (a, b) :: go rest
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go program

let compile opts dfg =
  let input_addrs =
    List.mapi (fun k (nm, _) -> (nm, k)) (Dfg.inputs dfg)
  in
  let layout =
    {
      input_of =
        (fun nm ->
          match List.assoc_opt nm input_addrs with
          | Some a -> a
          | None -> invalid_arg ("Compile: unknown input " ^ nm));
      next_slot = List.length input_addrs + 64;
      slots = Hashtbl.create 32;
    }
  in
  let program =
    if opts.memory_temps then gen_memory_temps opts dfg layout
    else gen_registers opts dfg layout
  in
  let program =
    match opts.cold_schedule with
    | Some p -> cold_schedule p program
    | None -> program
  in
  let program = if opts.pair then pair_pass program else program in
  Isa.validate program;
  let output_addrs =
    List.map (fun (nm, i) -> (nm, slot_of layout i)) (Dfg.outputs dfg)
  in
  { program; input_addrs; output_addrs }

let run compiled ?(width = 16) inputs =
  let m = Machine.create ~width () in
  List.iter
    (fun (nm, addr) ->
      match List.assoc_opt nm inputs with
      | Some v -> Machine.poke m addr v
      | None -> invalid_arg ("Compile.run: missing input " ^ nm))
    compiled.input_addrs;
  let cycles = Machine.run m compiled.program in
  ( List.map (fun (nm, addr) -> (nm, Machine.peek m addr)) compiled.output_addrs,
    cycles )

let verify compiled dfg ~rng ~samples =
  let m = (1 lsl Dfg.width dfg) - 1 in
  let names = List.map fst (Dfg.inputs dfg) in
  let rec go k =
    if k = 0 then true
    else begin
      let env = List.map (fun nm -> (nm, Lowpower.Rng.int rng (m + 1))) names in
      let expect = List.sort compare (Dfg.eval dfg env) in
      let got, _ = run compiled ~width:(Dfg.width dfg) env in
      if List.sort compare got = expect then go (k - 1) else false
    end
  in
  go samples

let measure compiled profile ?(width = 16) inputs =
  let m = Machine.create ~width () in
  List.iter
    (fun (nm, addr) ->
      match List.assoc_opt nm inputs with
      | Some v -> Machine.poke m addr v
      | None -> invalid_arg ("Compile.measure: missing input " ^ nm))
    compiled.input_addrs;
  let cycles = Machine.run m compiled.program in
  (Energy_model.program_energy profile (Machine.executed m), cycles)
