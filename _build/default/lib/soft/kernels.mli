(** Hand-built streaming DSP kernels — looped programs over memory-resident
    sample buffers, the shape of real embedded DSP code (§V, [23]).

    The compiler ({!Compile}) emits straight-line code for one evaluation;
    these kernels process [samples] outputs with one loop, trading a
    per-iteration control overhead for constant code size.  Both forms are
    verified against the same integer reference. *)

type fir_layout = {
  x_base : int;    (** samples x[0 .. samples + taps - 2], oldest first *)
  c_base : int;    (** coefficients c[0 .. taps - 1] *)
  y_base : int;    (** outputs y[0 .. samples - 1] *)
}

val fir_layout : taps:int -> samples:int -> fir_layout

val reference_fir :
  taps:int -> samples:int -> coeffs:int list -> xs:int list -> width:int
  -> int list
(** [y.(i) = sum_j c.(j) * x.(i + j)] with wrap-around at [width] bits. *)

val streaming_fir :
  taps:int -> samples:int -> ?pair:bool -> unit -> Isa.program * fir_layout
(** One loop over the sample buffer: pointer walks with [Addi]/[Ldx], the
    tap MACs unrolled inside the body, [Dec]/[Bnz] closing the loop.
    [pair] (default false) runs the Ld/MAC packing peephole inside the
    body (branch targets are recomputed).  Raises [Invalid_argument] for
    [taps < 1], [samples < 1] or [taps > 6] (register budget). *)

val unrolled_fir : taps:int -> samples:int -> Isa.program * fir_layout
(** The same computation fully unrolled with static addresses — no loop
    overhead, code size proportional to [samples]. *)

val load_fir_inputs :
  Machine.t -> fir_layout -> coeffs:int list -> xs:int list -> unit
(** Poke coefficients and samples into memory per the layout. *)

val read_fir_outputs : Machine.t -> fir_layout -> samples:int -> int list
