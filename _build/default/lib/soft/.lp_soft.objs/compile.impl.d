lib/soft/compile.ml: Array Dfg Energy_model Hashtbl Isa List Lowpower Machine Option
