lib/soft/machine.ml: Array Hashtbl Isa List Option
