lib/soft/machine.mli: Isa
