lib/soft/compile.mli: Dfg Energy_model Isa Lowpower
