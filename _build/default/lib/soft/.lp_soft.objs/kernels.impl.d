lib/soft/kernels.ml: Array Isa List Machine
