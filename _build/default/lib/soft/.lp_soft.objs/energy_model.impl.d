lib/soft/energy_model.ml: Isa
