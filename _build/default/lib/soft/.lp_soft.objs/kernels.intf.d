lib/soft/kernels.mli: Isa Machine
