lib/soft/energy_model.mli: Isa
