lib/soft/isa.ml: Format List
