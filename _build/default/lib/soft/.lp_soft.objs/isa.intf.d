lib/soft/isa.mli: Format
