let check_width width =
  if width < 1 || width > 30 then invalid_arg "Traces: width in [1, 30]"

let random_words rng ~width ~n =
  check_width width;
  List.init n (fun _ -> Lowpower.Rng.int rng (1 lsl width))

let random_walk rng ~width ~n ~step =
  check_width width;
  if step < 1 then invalid_arg "Traces.random_walk: step >= 1";
  let m = (1 lsl width) - 1 in
  let state = ref (Lowpower.Rng.int rng (m + 1)) in
  List.init n (fun _ ->
      let delta = Lowpower.Rng.int rng ((2 * step) + 1) - step in
      state := (!state + delta) land m;
      !state)

let sequential ~width ~n =
  check_width width;
  let m = (1 lsl width) - 1 in
  List.init n (fun i -> i land m)

let sparse_events rng ~width ~n ~activity =
  check_width width;
  if activity < 0.0 || activity > 1.0 then
    invalid_arg "Traces.sparse_events: activity in [0,1]";
  let state = ref 0 in
  List.init n (fun _ ->
      if Lowpower.Rng.bernoulli rng activity then
        state := Lowpower.Rng.int rng (1 lsl width);
      !state)

let enable_trace rng ~n ~duty ~data =
  if List.length data < n then
    invalid_arg "Traces.enable_trace: data trace too short";
  if duty < 0.0 || duty > 1.0 then
    invalid_arg "Traces.enable_trace: duty in [0,1]";
  List.filteri (fun i _ -> i < n) data
  |> List.map (fun w -> (Lowpower.Rng.bernoulli rng duty, w))
