(** FSM workloads for encoding, gating and synthesis experiments. *)

val random :
  Lowpower.Rng.t -> num_states:int -> num_inputs:int -> num_outputs:int
  -> ?locality:float -> unit -> Stg.t
(** Random complete machine.  [locality] (default 0.6) is the probability
    that a transition goes to the state's ring successor or predecessor
    rather than uniformly anywhere — giving the skewed transition weights
    low-power encodings exploit without risking absorbing states. *)

val counter : bits:int -> Stg.t
(** Up-counter with an enable input; output is the count.  Self-loops on
    [enable = 0] make it the canonical clock-gating customer. *)

val sequence_detector : pattern:bool list -> Stg.t
(** Mealy detector asserting its output when the input bit stream ends with
    [pattern]; the classic small control FSM. *)

val johnson : bits:int -> Stg.t
(** Free-running Johnson (twisted-ring) counter with [2*bits] states; its
    natural shift-register code is uni-distant by construction, making it
    the reference point low-power encodings chase. *)

val lfsr : bits:int -> Stg.t
(** Maximal-length linear-feedback shift register over [bits] in {3..6}
    (fixed primitive taps): a pseudo-random state sequence with high,
    pattern-free switching — the adversarial case for encoding. *)

val modulo_counter : modulus:int -> Stg.t
(** Free-running counter mod [modulus] (no inputs beyond a dummy bit), a
    pure cyclic chain — uni-distant encodings shine here. *)
