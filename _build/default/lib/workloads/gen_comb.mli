(** Seeded random combinational networks — the stand-in for MCNC/ISCAS
    benchmark circuits (see the substitution table in DESIGN.md). *)

type shape = {
  num_inputs : int;
  num_gates : int;
  max_fanin : int;       (** 2 or 3 give realistic structures *)
  output_fraction : float; (** fraction of sink gates exported as outputs *)
}

val default_shape : shape

val random : Lowpower.Rng.t -> shape -> Network.t
(** Gates draw a random function over [2..max_fanin] distinct earlier
    signals (mix of NAND/NOR/XOR/AOI shapes); every sink node becomes an
    output, plus a sampled fraction of internal nodes.  Acyclic by
    construction. *)

val random_sop_set :
  Lowpower.Rng.t -> nvars:int -> nfuncs:int -> cubes:int -> max_lits:int
  -> (string * Factor.sop) list
(** Random two-level functions sharing a variable set, with deliberately
    embedded common subexpressions — the factoring workload of E6. *)

val deep_chain : width:int -> depth:int -> Network.t
(** A deliberately unbalanced network (one long AND chain XOR-ed against
    short paths) that maximizes glitching; used in E5 alongside the
    arithmetic circuits. *)
