(** Word-level data traces for the bus-coding and register experiments. *)

val random_words : Lowpower.Rng.t -> width:int -> n:int -> int list
(** White noise. *)

val random_walk :
  Lowpower.Rng.t -> width:int -> n:int -> step:int -> int list
(** Slowly varying data (audio-like): each word is the previous plus a
    uniform step in [-step, step], wrapped. *)

val sequential : width:int -> n:int -> int list
(** 0, 1, 2, ... — an instruction-address stream. *)

val sparse_events :
  Lowpower.Rng.t -> width:int -> n:int -> activity:float -> int list
(** Mostly-idle trace: with probability [1 - activity] the previous word
    repeats. *)

val enable_trace :
  Lowpower.Rng.t -> n:int -> duty:float -> data:int list -> (bool * int) list
(** Pair a data trace with a write-enable that is high with probability
    [duty] — the clock-gating workload.  Raises [Invalid_argument] if the
    data trace is shorter than [n]. *)
