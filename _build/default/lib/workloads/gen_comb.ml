type shape = {
  num_inputs : int;
  num_gates : int;
  max_fanin : int;
  output_fraction : float;
}

let default_shape =
  { num_inputs = 8; num_gates = 40; max_fanin = 3; output_fraction = 0.15 }

let gate_funcs_2 =
  Expr.
    [
      not_ (var 0 &&& var 1);                    (* nand2 *)
      not_ (var 0 ||| var 1);                    (* nor2 *)
      var 0 &&& var 1;
      var 0 ||| var 1;
      Xor (var 0, var 1);
      not_ (Xor (var 0, var 1));
      var 0 &&& not_ (var 1);
    ]

let gate_funcs_3 =
  Expr.
    [
      not_ (and_list [ var 0; var 1; var 2 ]);           (* nand3 *)
      not_ (or_list [ var 0; var 1; var 2 ]);            (* nor3 *)
      not_ ((var 0 &&& var 1) ||| var 2);                (* aoi21 *)
      not_ ((var 0 ||| var 1) &&& var 2);                (* oai21 *)
      ite (var 0) (var 1) (var 2);                       (* mux *)
      Xor (var 0, Xor (var 1, var 2));                   (* xor3 *)
      (var 0 &&& var 1) ||| (var 1 &&& var 2) ||| (var 0 &&& var 2); (* maj *)
    ]

let random rng shape =
  if shape.num_inputs < 2 || shape.num_gates < 1 then
    invalid_arg "Gen_comb.random: degenerate shape";
  if shape.max_fanin < 2 || shape.max_fanin > 3 then
    invalid_arg "Gen_comb.random: max_fanin must be 2 or 3";
  let net = Network.create () in
  let signals = ref [] in
  for _ = 1 to shape.num_inputs do
    signals := Network.add_input net :: !signals
  done;
  let pick_distinct k =
    let pool = Array.of_list !signals in
    Lowpower.Rng.shuffle rng pool;
    Array.to_list (Array.sub pool 0 k)
  in
  for _ = 1 to shape.num_gates do
    let fanin =
      if shape.max_fanin = 2 then 2 else 2 + Lowpower.Rng.int rng 2
    in
    let fanin = min fanin (List.length !signals) in
    let funcs = if fanin = 2 then gate_funcs_2 else gate_funcs_3 in
    let f = Lowpower.Rng.pick rng (Array.of_list funcs) in
    let fanins = pick_distinct fanin in
    signals := Network.add_node net f fanins :: !signals
  done;
  (* Sinks are always outputs; add a sample of internal nodes. *)
  let with_fanout = Hashtbl.create 64 in
  List.iter
    (fun i ->
      List.iter (fun j -> Hashtbl.replace with_fanout j ()) (Network.fanins net i))
    (Network.node_ids net);
  let k = ref 0 in
  List.iter
    (fun i ->
      if not (Network.is_input net i) then
        if
          (not (Hashtbl.mem with_fanout i))
          || Lowpower.Rng.bernoulli rng shape.output_fraction
        then begin
          Network.set_output net (Printf.sprintf "z%d" !k) i;
          incr k
        end)
    (Network.node_ids net);
  net

let random_sop_set rng ~nvars ~nfuncs ~cubes ~max_lits =
  if nvars < 2 || nfuncs < 1 || cubes < 1 || max_lits < 1 then
    invalid_arg "Gen_comb.random_sop_set: degenerate parameters";
  (* Shared sub-cubes encourage extractable kernels. *)
  let random_cube max_lits =
    let n = 1 + Lowpower.Rng.int rng max_lits in
    let vars = Array.init nvars (fun v -> v) in
    Lowpower.Rng.shuffle rng vars;
    List.sort compare
      (List.init (min n nvars) (fun k ->
           let v = vars.(k) in
           if Lowpower.Rng.bool rng then Factor.lit_pos v else Factor.lit_neg v))
  in
  let shared = List.init 3 (fun _ -> random_cube (max 1 (max_lits - 1))) in
  List.init nfuncs (fun f ->
      let sop =
        List.init cubes (fun _ ->
            if Lowpower.Rng.bernoulli rng 0.5 then begin
              (* Extend a shared sub-cube with one extra literal. *)
              let base = Lowpower.Rng.pick rng (Array.of_list shared) in
              let extra = random_cube 1 in
              List.sort_uniq compare (base @ extra)
            end
            else random_cube max_lits)
      in
      (Printf.sprintf "f%d" f, sop))

let deep_chain ~width ~depth =
  if width < 2 || depth < 1 then invalid_arg "Gen_comb.deep_chain: degenerate";
  let net = Network.create () in
  let ins = List.init width (fun _ -> Network.add_input net) in
  let arr = Array.of_list ins in
  (* Long chain: alternating and/or over rotating inputs. *)
  let chain = ref arr.(0) in
  for d = 1 to depth do
    let other = arr.(d mod width) in
    let f = if d mod 2 = 0 then Expr.(var 0 &&& var 1) else Expr.(var 0 ||| var 1) in
    chain := Network.add_node net f [ !chain; other ]
  done;
  (* Short path: single gate from two inputs, recombined with the deep
     chain so arrival times collide maximally. *)
  let short = Network.add_node net Expr.(Xor (var 0, var 1)) [ arr.(0); arr.(1 mod width) ] in
  let out = Network.add_node net Expr.(Xor (var 0, var 1)) [ !chain; short ] in
  Network.set_output net "z" out;
  net
