let random rng ~num_states ~num_inputs ~num_outputs ?(locality = 0.6) () =
  if num_states < 2 then invalid_arg "Gen_fsm.random: need >= 2 states";
  let codes = 1 lsl num_inputs in
  let next_tbl =
    Array.init num_states (fun s ->
        Array.init codes (fun _ ->
            if Lowpower.Rng.bernoulli rng locality then
              (* Preferred neighbours: the ring successor or predecessor.
                 Self-loops are left to the uniform branch so the chain
                 cannot collapse into an absorbing state. *)
              if Lowpower.Rng.bool rng then (s + 1) mod num_states
              else (s + num_states - 1) mod num_states
            else Lowpower.Rng.int rng num_states))
  in
  let out_tbl =
    Array.init num_states (fun _ ->
        Array.init codes (fun _ -> Lowpower.Rng.int rng (1 lsl num_outputs)))
  in
  Stg.create ~name:"random" ~num_states ~num_inputs ~num_outputs
    ~next:(fun s i -> next_tbl.(s).(i))
    ~output:(fun s i -> out_tbl.(s).(i))
    ()

let counter ~bits =
  if bits < 1 || bits > 8 then invalid_arg "Gen_fsm.counter: bits in [1,8]";
  let n = 1 lsl bits in
  Stg.create ~name:(Printf.sprintf "counter%d" bits) ~num_states:n
    ~num_inputs:1 ~num_outputs:bits
    ~next:(fun s i -> if i = 1 then (s + 1) mod n else s)
    ~output:(fun s _ -> s)
    ()

let sequence_detector ~pattern =
  let k = List.length pattern in
  if k < 1 || k > 10 then
    invalid_arg "Gen_fsm.sequence_detector: pattern length in [1,10]";
  let pat = Array.of_list pattern in
  (* KMP automaton: state = matched prefix length, failure function for
     mismatches, border collapse after a full match (overlaps allowed). *)
  let failure = Array.make (k + 1) 0 in
  for s = 2 to k do
    let rec extend j =
      if pat.(s - 1) = pat.(j) then j + 1
      else if j = 0 then 0
      else extend failure.(j)
    in
    failure.(s) <- extend failure.(s - 1)
  done;
  let rec delta s bit =
    if s < k && pat.(s) = bit then s + 1
    else if s = 0 then 0
    else delta failure.(s) bit
  in
  let step s i = delta s (i = 1) in
  let next s i =
    let t = step s i in
    if t = k then failure.(k) else t
  in
  let output s i = if step s i = k then 1 else 0 in
  Stg.create ~name:"detector" ~num_states:k ~num_inputs:1 ~num_outputs:1
    ~next ~output ()

let johnson ~bits =
  if bits < 2 || bits > 6 then invalid_arg "Gen_fsm.johnson: bits in [2,6]";
  let n = 2 * bits in
  (* State s < n; the shift-register code is derived from the ring
     position: positions 0..bits fill with ones from the LSB, then drain. *)
  Stg.create ~name:(Printf.sprintf "johnson%d" bits) ~num_states:n
    ~num_inputs:1 ~num_outputs:bits
    ~next:(fun s _ -> (s + 1) mod n)
    ~output:(fun s _ ->
      if s <= bits then (1 lsl s) - 1
      else ((1 lsl bits) - 1) lxor ((1 lsl (s - bits)) - 1))
    ()

let lfsr ~bits =
  if bits < 3 || bits > 6 then invalid_arg "Gen_fsm.lfsr: bits in [3,6]";
  (* Primitive feedback taps (Fibonacci form) per width. *)
  let taps = match bits with
    | 3 -> [ 2; 1 ] | 4 -> [ 3; 2 ] | 5 -> [ 4; 2 ] | _ -> [ 5; 4 ]
  in
  let step s =
    let bit =
      List.fold_left (fun acc t -> acc lxor ((s lsr t) land 1)) 0 taps
    in
    (((s lsl 1) lor bit) land ((1 lsl bits) - 1))
  in
  (* States 1..2^bits-1 reachable; include 0 as a self-loop dead state so
     the machine is complete. *)
  Stg.create ~name:(Printf.sprintf "lfsr%d" bits) ~num_states:(1 lsl bits)
    ~num_inputs:1 ~num_outputs:bits
    ~next:(fun s _ -> if s = 0 then 0 else step s)
    ~output:(fun s _ -> s)
    ()

let modulo_counter ~modulus =
  if modulus < 2 || modulus > 64 then
    invalid_arg "Gen_fsm.modulo_counter: modulus in [2,64]";
  Stg.create ~name:(Printf.sprintf "mod%d" modulus) ~num_states:modulus
    ~num_inputs:1 ~num_outputs:1
    ~next:(fun s _ -> (s + 1) mod modulus)
    ~output:(fun s _ -> if s = 0 then 1 else 0)
    ()
