lib/workloads/traces.ml: List Lowpower
