lib/workloads/traces.mli: Lowpower
