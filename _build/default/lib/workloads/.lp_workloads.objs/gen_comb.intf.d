lib/workloads/gen_comb.mli: Factor Lowpower Network
