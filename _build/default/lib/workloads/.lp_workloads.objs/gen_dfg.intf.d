lib/workloads/gen_dfg.mli: Dfg Lowpower
