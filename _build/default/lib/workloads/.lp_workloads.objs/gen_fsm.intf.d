lib/workloads/gen_fsm.mli: Lowpower Stg
