lib/workloads/gen_comb.ml: Array Expr Factor Hashtbl List Lowpower Network Printf
