lib/workloads/gen_dfg.ml: Array Dfg Hashtbl List Lowpower Option Printf
