lib/workloads/gen_fsm.ml: Array List Lowpower Printf Stg
