(** Small descriptive-statistics helpers used by estimators and experiments. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val minimum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val correlation : float list -> float list -> float
(** Pearson correlation coefficient of two equal-length series; 0 when either
    series is constant.  Raises [Invalid_argument] on length mismatch. *)

val rms_error : float list -> float list -> float
(** Root-mean-square error between a prediction series and a reference
    series.  Raises [Invalid_argument] on length mismatch. *)

val mean_abs_pct_error : float list -> float list -> float
(** Mean of |pred - ref| / |ref| over pairs with nonzero reference. *)
