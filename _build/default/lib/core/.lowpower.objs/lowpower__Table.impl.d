lib/core/table.ml: Format List Printf String
