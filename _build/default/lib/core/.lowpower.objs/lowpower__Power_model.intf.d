lib/core/power_model.mli: Format
