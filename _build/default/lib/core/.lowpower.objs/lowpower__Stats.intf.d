lib/core/stats.mli:
