lib/core/rng.mli:
