lib/core/power_model.ml: Format
