let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let check_same_length name xs ys =
  if List.length xs <> List.length ys then
    invalid_arg (name ^ ": series length mismatch")

let correlation xs ys =
  check_same_length "Stats.correlation" xs ys;
  let mx = mean xs and my = mean ys in
  let cov =
    mean (List.map2 (fun x y -> (x -. mx) *. (y -. my)) xs ys)
  in
  let sx = stddev xs and sy = stddev ys in
  if sx = 0.0 || sy = 0.0 then 0.0 else cov /. (sx *. sy)

let rms_error pred ref_ =
  check_same_length "Stats.rms_error" pred ref_;
  sqrt (mean (List.map2 (fun p r -> (p -. r) ** 2.0) pred ref_))

let mean_abs_pct_error pred ref_ =
  check_same_length "Stats.mean_abs_pct_error" pred ref_;
  let errs =
    List.filter_map
      (fun (p, r) ->
        if r = 0.0 then None else Some (Float.abs ((p -. r) /. r)))
      (List.combine pred ref_)
  in
  mean errs
