type align = Left | Right

type row = Cells of string list | Rule

type t = {
  caption : string option;
  headers : (string * align) list;
  mutable rows : row list;      (* reverse order *)
  mutable notes : string list;  (* reverse order *)
}

let create ?caption headers = { caption; headers; rows = []; notes = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch with header";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let note t s = t.notes <- s :: t.notes

let pp ppf t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let cell_rows =
    List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc cells -> max acc (String.length (List.nth cells i)))
          (String.length h) cell_rows)
      headers
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let print_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells
    in
    Format.fprintf ppf "| %s |@," (String.concat " | " padded)
  in
  let rule () =
    let segs = List.map (fun w -> String.make (w + 2) '-') widths in
    Format.fprintf ppf "+%s+@," (String.concat "+" segs)
  in
  Format.pp_open_vbox ppf 0;
  (match t.caption with
  | None -> ()
  | Some c -> Format.fprintf ppf "%s@," c);
  rule ();
  print_cells headers;
  rule ();
  List.iter (function Cells c -> print_cells c | Rule -> rule ()) rows;
  rule ();
  List.iter (fun n -> Format.fprintf ppf "  note: %s@," n) (List.rev t.notes);
  Format.pp_close_box ppf ()

let print t =
  Format.printf "%a@." pp t;
  print_newline ()

let cell_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let cell_ratio x = Printf.sprintf "%.2fx" x
