(** Plain-text result tables for the experiment harness.

    Every experiment in [bench/main.ml] reports its results through this
    module so that the harness output reads like the tables of a paper:
    a caption, a header row, aligned columns, and an optional note. *)

type align = Left | Right

type t

val create : ?caption:string -> (string * align) list -> t
(** [create ~caption headers] starts a table with the given column headers
    and alignments. *)

val add_row : t -> string list -> unit
(** Append one row.  Raises [Invalid_argument] if the arity does not match
    the header. *)

val add_rule : t -> unit
(** Append a horizontal separator between row groups. *)

val note : t -> string -> unit
(** Attach a footnote printed below the table. *)

val pp : Format.formatter -> t -> unit
(** Render with box-drawing rules and padded columns. *)

val print : t -> unit
(** [pp] to standard output, followed by a blank line. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float for a table cell (default 3 decimals). *)

val cell_pct : float -> string
(** Format a fraction as a percentage cell, e.g. [0.372] -> ["37.2%"]. *)

val cell_ratio : float -> string
(** Format a speedup/reduction factor, e.g. ["1.83x"]. *)
