(** Switching-activity and transition-density estimation.

    Activity is the [N] factor of Eqn. 1: expected output transitions per
    clock cycle.  Under the zero-delay model with temporally independent
    vectors, a node of signal probability [p] has activity [2 p (1-p)].
    Transition density (Najm) instead propagates input toggle rates through
    Boolean differences and also captures inputs that toggle more or less
    than once per cycle. *)

type t = (Network.id, float) Hashtbl.t
(** Expected transitions per cycle, per node. *)

val of_probability : float -> float
(** [2 p (1 - p)]. *)

val zero_delay : ?exact:bool -> Network.t -> input_probs:float array -> t
(** Per-node zero-delay activity from signal probabilities
    ([exact] defaults to [true]; otherwise the independence estimate). *)

val transition_density : Network.t -> input_probs:float array
  -> input_densities:float array -> t
(** Najm-style density propagation on exact global BDDs:
    [D(y) = sum_i P(df/dx_i) D(x_i)].  Input densities are transitions per
    cycle of each primary input. *)

val switched_capacitance : Network.t -> t -> float
(** [sum_n cap(n) * activity(n)] over logic nodes and inputs — the
    capacitance-weighted activity that Eqn. 1 multiplies by [1/2 V^2 f]. *)

val network_power :
  Lowpower.Power_model.params -> Network.t -> t -> Lowpower.Power_model.breakdown
(** Eqn. 1 evaluated with the network's switched capacitance, treating the
    per-node [cap] annotations as farads. *)
