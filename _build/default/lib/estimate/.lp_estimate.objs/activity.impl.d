lib/estimate/activity.ml: Array Bdd Hashtbl List Lowpower Network Probability
