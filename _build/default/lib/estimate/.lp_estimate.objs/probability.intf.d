lib/estimate/probability.mli: Hashtbl Lowpower Network
