lib/estimate/activity.mli: Hashtbl Lowpower Network
