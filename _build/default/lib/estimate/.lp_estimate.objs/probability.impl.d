lib/estimate/probability.ml: Array Bdd Hashtbl List Lowpower Network Option
