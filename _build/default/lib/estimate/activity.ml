type t = (Network.id, float) Hashtbl.t

let of_probability p = 2.0 *. p *. (1.0 -. p)

let zero_delay ?(exact = true) net ~input_probs =
  let probs =
    if exact then Probability.exact net ~input_probs
    else Probability.approximate net ~input_probs
  in
  let act = Hashtbl.create (Hashtbl.length probs) in
  Hashtbl.iter (fun i p -> Hashtbl.replace act i (of_probability p)) probs;
  act

let transition_density net ~input_probs ~input_densities =
  let arity = List.length (Network.inputs net) in
  if Array.length input_densities <> arity then
    invalid_arg "Activity.transition_density: density arity mismatch";
  let man = Bdd.manager () in
  let bdds = Network.global_bdds net man in
  let dens = Hashtbl.create (Hashtbl.length bdds) in
  Hashtbl.iter
    (fun i bdd ->
      if Network.is_input net i then
        Hashtbl.replace dens i input_densities.(Network.input_index net i)
      else begin
        let d =
          List.fold_left
            (fun acc v ->
              let diff = Bdd.boolean_difference man bdd v in
              let sensitivity =
                Bdd.probability man (fun k -> input_probs.(k)) diff
              in
              acc +. (sensitivity *. input_densities.(v)))
            0.0 (Bdd.support bdd)
        in
        Hashtbl.replace dens i d
      end)
    bdds;
  dens

let switched_capacitance net act =
  Hashtbl.fold
    (fun i a acc -> acc +. (Network.cap net i *. a))
    act 0.0

let network_power params net act =
  let swcap = switched_capacitance net act in
  let transitions = Hashtbl.fold (fun _ a acc -> acc +. a) act 0.0 in
  if transitions <= 0.0 then
    Lowpower.Power_model.power params ~capacitance:0.0 ~activity:0.0
  else
    Lowpower.Power_model.power params
      ~capacitance:(swcap /. transitions)
      ~activity:transitions
