type encoded = {
  driven : int;
  invert : bool;
}

let check_width width =
  if width <= 0 || width > 62 then
    invalid_arg "Bus_invert: width must be in [1, 62]"

let mask width = (1 lsl width) - 1

let encode ~width words =
  check_width width;
  let m = mask width in
  let encode_one (prev_driven, prev_invert, acc) w =
    if w land lnot m <> 0 then
      invalid_arg "Bus_invert.encode: word wider than the bus";
    let dist_plain = Bus.hamming prev_driven w in
    let dist_inv = Bus.hamming prev_driven (w lxor m) in
    (* Tie goes to not inverting (cheaper E line on average). *)
    let cost_plain = dist_plain + (if prev_invert then 1 else 0) in
    let cost_inv = dist_inv + (if prev_invert then 0 else 1) in
    let e =
      if cost_inv < cost_plain then { driven = w lxor m; invert = true }
      else { driven = w; invert = false }
    in
    (e.driven, e.invert, e :: acc)
  in
  let _, _, acc = List.fold_left encode_one (0, false, []) words in
  List.rev acc

let decode ~width encs =
  check_width width;
  let m = mask width in
  List.map (fun e -> if e.invert then e.driven lxor m else e.driven) encs

let transitions ~width encs =
  check_width width;
  let rec go prev prev_e acc = function
    | [] -> acc
    | e :: rest ->
      let d = Bus.hamming prev e.driven + if prev_e <> e.invert then 1 else 0 in
      go e.driven e.invert (acc + d) rest
  in
  go 0 false 0 encs

let raw_transitions ~width words =
  check_width width;
  List.iter
    (fun w ->
      if w land lnot (mask width) <> 0 then
        invalid_arg "Bus_invert.raw_transitions: word wider than the bus")
    words;
  Bus.transitions words

let max_transitions_per_transfer ~width = (width + 1) / 2

let saving ~width words =
  let raw = raw_transitions ~width words in
  if raw = 0 then 0.0
  else
    let enc = transitions ~width (encode ~width words) in
    1.0 -. (float_of_int enc /. float_of_int raw)
