type system = { moduli : int array }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make moduli =
  if moduli = [] then invalid_arg "Residue.make: empty moduli";
  List.iter
    (fun m -> if m < 2 then invalid_arg "Residue.make: modulus < 2")
    moduli;
  let rec pairwise = function
    | [] -> ()
    | m :: rest ->
      List.iter
        (fun n ->
          if gcd m n <> 1 then
            invalid_arg "Residue.make: moduli must be pairwise coprime")
        rest;
      pairwise rest
  in
  pairwise moduli;
  { moduli = Array.of_list moduli }

let standard = make [ 3; 5; 7; 11 ]

let range sys = Array.fold_left ( * ) 1 sys.moduli

type value = { digits : int array }

let encode sys x =
  if x < 0 || x >= range sys then invalid_arg "Residue.encode: out of range";
  { digits = Array.map (fun m -> x mod m) sys.moduli }

(* CRT by search over one congruence class; moduli products are small. *)
let decode sys v =
  let n = range sys in
  let rec find x =
    if x >= n then invalid_arg "Residue.decode: inconsistent digits"
    else if
      Array.for_all
        (fun i -> x mod sys.moduli.(i) = v.digits.(i))
        (Array.init (Array.length sys.moduli) (fun i -> i))
    then x
    else find (x + 1)
  in
  find 0

let digitwise sys op a b =
  {
    digits =
      Array.init (Array.length sys.moduli) (fun i ->
          op a.digits.(i) b.digits.(i) mod sys.moduli.(i));
  }

let add sys a b = digitwise sys ( + ) a b
let mul sys a b = digitwise sys ( * ) a b

let one_hot_bits sys = Array.fold_left ( + ) 0 sys.moduli

let one_hot_transitions sys a b =
  let count = ref 0 in
  Array.iteri
    (fun i _ -> if a.digits.(i) <> b.digits.(i) then count := !count + 2)
    sys.moduli;
  !count

let accumulate_transitions sys data =
  let rec go acc_v total = function
    | [] -> total
    | d :: rest ->
      let dv = encode sys (((d mod range sys) + range sys) mod range sys) in
      let next = add sys acc_v dv in
      go next (total + one_hot_transitions sys acc_v next) rest
  in
  go (encode sys 0) 0 data

let binary_accumulate_transitions ~width data =
  if width <= 0 || width > 62 then
    invalid_arg "Residue.binary_accumulate_transitions: bad width";
  let m = (1 lsl width) - 1 in
  let rec go acc total = function
    | [] -> total
    | d :: rest ->
      let next = (acc + d) land m in
      go next (total + Bus.popcount (acc lxor next)) rest
  in
  go 0 0 data
