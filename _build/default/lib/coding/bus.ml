let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let hamming a b = popcount (a lxor b)

let transitions words =
  let rec go prev acc = function
    | [] -> acc
    | w :: rest -> go w (acc + hamming prev w) rest
  in
  go 0 0 words

let transitions_per_word = function
  | [] -> 0.0
  | words ->
    float_of_int (transitions words) /. float_of_int (List.length words)

let energy ~cap_per_line ~vdd words =
  float_of_int (transitions words) *. cap_per_line *. vdd *. vdd *. 0.5
