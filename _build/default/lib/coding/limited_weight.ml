let transition_signal words =
  let rec go prev acc = function
    | [] -> List.rev acc
    | w :: rest -> go w ((prev lxor w) :: acc) rest
  in
  go 0 [] words

let transition_designal signals =
  let rec go state acc = function
    | [] -> List.rev acc
    | s :: rest ->
      let w = state lxor s in
      go w (w :: acc) rest
  in
  go 0 [] signals

let gray_of_int n = n lxor (n lsr 1)

let int_of_gray g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

let gray_sequence_transitions n =
  Bus.transitions (List.init n gray_of_int)

let binary_sequence_transitions n =
  Bus.transitions (List.init n (fun i -> i))

type lwc = {
  payload_bits : int;
  max_weight : int;
  nbits : int;
  enc : int array;             (* payload -> codeword *)
  dec : (int, int) Hashtbl.t;  (* codeword -> payload *)
}

let choose n k =
  let rec go acc i =
    if i > k then acc else go (acc * (n - i + 1) / i) (i + 1)
  in
  if k < 0 || k > n then 0 else go 1 1

let count_light n w =
  let rec go acc k = if k > w then acc else go (acc + choose n k) (k + 1) in
  go 0 0

let make_lwc ~payload_bits ~max_weight =
  if payload_bits <= 0 || payload_bits > 16 then
    invalid_arg "Limited_weight.make_lwc: payload_bits in [1, 16]";
  let need = 1 lsl payload_bits in
  let rec find n =
    if n > payload_bits + 8 then None
    else if count_light n max_weight >= need then Some n
    else find (n + 1)
  in
  match find payload_bits with
  | None -> None
  | Some nbits ->
    (* Enumerate codewords in increasing weight, then numeric order. *)
    let words = List.init (1 lsl nbits) (fun w -> w) in
    let sorted =
      List.sort
        (fun a b ->
          match compare (Bus.popcount a) (Bus.popcount b) with
          | 0 -> compare a b
          | c -> c)
        words
    in
    let light =
      List.filter (fun w -> Bus.popcount w <= max_weight) sorted
    in
    let enc = Array.make need 0 in
    let dec = Hashtbl.create need in
    List.iteri
      (fun payload code ->
        if payload < need then begin
          enc.(payload) <- code;
          Hashtbl.replace dec code payload
        end)
      light;
    Some { payload_bits; max_weight; nbits; enc; dec }

let codeword_bits c = c.nbits

let lwc_encode c payload =
  if payload < 0 || payload >= Array.length c.enc then
    invalid_arg "Limited_weight.lwc_encode: payload out of range";
  c.enc.(payload)

let lwc_decode c code =
  match Hashtbl.find_opt c.dec code with
  | Some p -> p
  | None -> raise Not_found

let lwc_bus_transitions c payloads =
  let encoded = List.map (lwc_encode c) payloads in
  (* Transition signaling turns word weight into line toggles. *)
  List.fold_left (fun acc w -> acc + Bus.popcount w) 0 encoded
