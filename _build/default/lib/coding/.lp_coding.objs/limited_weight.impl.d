lib/coding/limited_weight.ml: Array Bus Hashtbl List
