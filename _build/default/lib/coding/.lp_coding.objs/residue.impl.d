lib/coding/residue.ml: Array Bus List
