lib/coding/bus_invert.mli:
