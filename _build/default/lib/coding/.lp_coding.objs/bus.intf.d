lib/coding/bus.mli:
