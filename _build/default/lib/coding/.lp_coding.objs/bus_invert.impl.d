lib/coding/bus_invert.ml: Bus List
