lib/coding/limited_weight.mli:
