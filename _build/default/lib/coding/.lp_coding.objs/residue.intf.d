lib/coding/residue.mli:
