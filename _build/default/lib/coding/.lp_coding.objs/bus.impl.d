lib/coding/bus.ml: List
