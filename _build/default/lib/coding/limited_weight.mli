(** Other low-power bus codes of [39]: transition signaling, Gray-coded
    addressing, and a small limited-weight block code.

    - {e Transition signaling}: drive [prev XOR word]; the receiver XORs
      back.  Line toggles now equal the {e weight} (number of 1s) of the
      transmitted word, so codes that bound word weight bound power.
    - {e Gray addressing}: sequential addresses differ in exactly one bit —
      ideal for instruction-fetch style buses.
    - {e Limited-weight code}: map each k-bit word to an n-bit codeword
      (n > k) of weight at most [w]; combined with transition signaling the
      per-transfer transitions are bounded by [w]. *)

val transition_signal : int list -> int list
(** XOR-encode a trace (initial bus state 0). *)

val transition_designal : int list -> int list
(** Inverse of {!transition_signal}. *)

val gray_of_int : int -> int
val int_of_gray : int -> int

val gray_sequence_transitions : int -> int
(** Bus transitions for fetching addresses [0..n-1] Gray-coded — exactly
    [n - 1]. *)

val binary_sequence_transitions : int -> int
(** The same fetch trace in plain binary — about [2 (n-1)] for large runs. *)

type lwc
(** A limited-weight code book for a given payload width. *)

val make_lwc : payload_bits:int -> max_weight:int -> lwc option
(** Smallest codeword width [n >= payload_bits] such that the number of
    words of weight <= [max_weight] covers the payload space; [None] if
    none exists with [n <= payload_bits + 8].  Codewords are assigned in
    increasing weight order, so frequent small payloads get light codes. *)

val codeword_bits : lwc -> int
val lwc_encode : lwc -> int -> int
(** Raises [Invalid_argument] if the payload is out of range. *)

val lwc_decode : lwc -> int -> int
(** Raises [Not_found] on a non-codeword. *)

val lwc_bus_transitions : lwc -> int list -> int
(** Transitions when the payload trace is LWC-encoded and transition-
    signaled: each transfer costs at most [max_weight] toggles. *)
