(** Bus transition accounting (§III.C.1, [39]).

    Off-chip and long on-chip buses carry capacitances orders of magnitude
    above gate loads, so the number of {e line transitions} between
    consecutive words dominates I/O power.  All encodings in this library
    are judged by this count. *)

val hamming : int -> int -> int
(** Bit differences between two words. *)

val popcount : int -> int

val transitions : int list -> int
(** Total transitions when the word sequence is driven on a bus starting
    from an all-zero idle state. *)

val transitions_per_word : int list -> float
(** {!transitions} divided by the number of words (0 for the empty list). *)

val energy : cap_per_line:float -> vdd:float -> int list -> float
(** Joules to drive the trace: [transitions * cap * vdd^2 / 2]. *)
