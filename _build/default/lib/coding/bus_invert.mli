(** Bus-invert coding (§III.C.1, [39] Stan & Burleson).

    An extra line E is added to an n-bit bus.  Before each transfer the
    sender compares the Hamming distance between the last driven word and
    the new one; if it exceeds n/2 the complement is driven instead and E is
    asserted, so the receiver re-complements.  The per-transfer transition
    count (including E) is thereby capped at ceil(n/2), and the average
    falls for random data — the exact example worked in the paper's text
    (0000 -> 1011 is sent as 0100 with E set). *)

type encoded = {
  driven : int;      (** word actually placed on the n data lines *)
  invert : bool;     (** state of the E line *)
}

val encode : width:int -> int list -> encoded list
(** Encode a word trace (bus and E start at zero).  Raises
    [Invalid_argument] if a word does not fit in [width] bits or
    [width <= 0]. *)

val decode : width:int -> encoded list -> int list
(** Inverse of {!encode}; [decode ~width (encode ~width ws) = ws]. *)

val transitions : width:int -> encoded list -> int
(** Transitions on the n data lines plus the E line, from the all-zero idle
    state. *)

val raw_transitions : width:int -> int list -> int
(** Transitions of the unencoded trace on the same bus (E excluded). *)

val max_transitions_per_transfer : width:int -> int
(** The ceil(n/2) worst-case bound that encoding guarantees. *)

val saving : width:int -> int list -> float
(** [1 - encoded/raw] transition ratio on a trace; >= 0 up to the +1 E-line
    idle cost, approaching ~18% for wide random buses and more for
    high-activity traces. *)
