(** One-hot residue number system arithmetic (§III.C.1, [11] Chren).

    A residue number system represents an integer by its remainders modulo
    a set of pairwise-coprime moduli; addition and multiplication act
    digit-wise with no carries.  Encoding each residue digit {e one-hot}
    makes addition a cyclic rotation of a one-hot vector: exactly two lines
    toggle per digit per operation (one off, one on), independent of the
    operand values — unlike a binary adder whose toggles grow with word
    length and carry chains. *)

type system
(** A moduli set, e.g. (3, 5, 7) covering range 105. *)

val make : int list -> system
(** Raises [Invalid_argument] unless the moduli are >= 2 and pairwise
    coprime. *)

val standard : system
(** Moduli (3, 5, 7, 11): range 1155, enough for 10-bit data. *)

val range : system -> int
(** Product of the moduli: representable values are [0, range). *)

type value = { digits : int array }
(** Residue digits, one per modulus. *)

val encode : system -> int -> value
(** Raises [Invalid_argument] outside [0, range). *)

val decode : system -> value -> int
(** Chinese-remainder reconstruction. *)

val add : system -> value -> value -> value
val mul : system -> value -> value -> value

val one_hot_bits : system -> int
(** Total register bits in the one-hot representation (sum of moduli). *)

val one_hot_transitions : system -> value -> value -> int
(** Line toggles when the one-hot registers move from one value to the
    next: 2 per digit that changes, 0 per digit that does not. *)

val accumulate_transitions : system -> int list -> int
(** One-hot register toggles while accumulating (running sum mod range) a
    data trace — the RNS side of experiment E10. *)

val binary_accumulate_transitions : width:int -> int list -> int
(** Register toggles of a plain binary accumulator of the given width on
    the same trace (the baseline). *)
