type t = { n : int; bits : Bytes.t }

let create n =
  if n < 0 || n > 20 then invalid_arg "Truth_table.create: 0 <= n <= 20";
  let words = max 1 ((1 lsl n) + 7) / 8 in
  { n; bits = Bytes.make words '\000' }

let num_vars t = t.n
let num_minterms t = 1 lsl t.n

let get t i =
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  byte land (1 lsl (i land 7)) <> 0

let set t i b =
  let idx = i lsr 3 in
  let byte = Char.code (Bytes.get t.bits idx) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set t.bits idx (Char.chr byte)

let of_fun n f =
  let t = create n in
  for i = 0 to (1 lsl n) - 1 do
    set t i (f i)
  done;
  t

let of_expr n e = of_fun n (fun code -> Expr.eval (fun v -> code land (1 lsl v) <> 0) e)

let of_bdd n b = of_fun n (fun code -> Bdd.eval b (fun v -> code land (1 lsl v) <> 0))

let to_expr t =
  let minterm code =
    let lits =
      List.init t.n (fun v ->
          if code land (1 lsl v) <> 0 then Expr.var v else Expr.not_ (Expr.var v))
    in
    Expr.and_list lits
  in
  let terms = ref [] in
  for code = num_minterms t - 1 downto 0 do
    if get t code then terms := minterm code :: !terms
  done;
  Expr.or_list !terms

let ones t =
  let count = ref 0 in
  for i = 0 to num_minterms t - 1 do
    if get t i then incr count
  done;
  !count

let probability t = float_of_int (ones t) /. float_of_int (num_minterms t)

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let copy t = { t with bits = Bytes.copy t.bits }

let map2 name f a b =
  if a.n <> b.n then invalid_arg ("Truth_table." ^ name ^ ": arity mismatch");
  of_fun a.n (fun i -> f (get a i) (get b i))

let not_ a = of_fun a.n (fun i -> not (get a i))
let and_ a b = map2 "and_" ( && ) a b
let or_ a b = map2 "or_" ( || ) a b
let xor a b = map2 "xor" ( <> ) a b

let cofactor t v b =
  of_fun t.n (fun code ->
      let code = if b then code lor (1 lsl v) else code land lnot (1 lsl v) in
      get t code)

let pp ppf t =
  for i = 0 to num_minterms t - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
