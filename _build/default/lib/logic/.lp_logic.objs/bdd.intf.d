lib/logic/bdd.mli: Expr
