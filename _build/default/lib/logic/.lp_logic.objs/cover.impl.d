lib/logic/cover.ml: Array Bdd Cube Expr Format List Truth_table
