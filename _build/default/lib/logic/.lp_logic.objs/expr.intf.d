lib/logic/expr.mli: Format
