lib/logic/bdd.ml: Expr Hashtbl Int List Set
