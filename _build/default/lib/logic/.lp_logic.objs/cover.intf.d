lib/logic/cover.mli: Bdd Cube Expr Format Truth_table
