lib/logic/circuits.mli: Network
