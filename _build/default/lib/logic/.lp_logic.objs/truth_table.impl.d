lib/logic/truth_table.ml: Bdd Bytes Char Expr Format List
