lib/logic/truth_table.mli: Bdd Expr Format
