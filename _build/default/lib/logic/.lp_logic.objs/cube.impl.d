lib/logic/cube.ml: Array Expr Format List Stdlib
