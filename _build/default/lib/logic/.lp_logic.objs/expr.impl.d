lib/logic/expr.ml: Format Int List Set Stdlib
