lib/logic/network.ml: Array Bdd Expr Format Hashtbl List Printf
