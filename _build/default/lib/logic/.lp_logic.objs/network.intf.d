lib/logic/network.mli: Bdd Expr Format Hashtbl
