lib/logic/cube.mli: Expr Format
