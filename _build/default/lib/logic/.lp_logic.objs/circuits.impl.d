lib/logic/circuits.ml: Array Expr List Network Option Printf String
