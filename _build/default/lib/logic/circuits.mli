(** Generators for standard datapath circuits as Boolean networks.

    These are the "known" structures used throughout the experiments:
    adders for the glitch and architecture-power studies, the magnitude
    comparator of the paper's Fig. 1, an array multiplier for the path
    balancing experiment ([25] built exactly such a multiplier). *)

type datapath = {
  net : Network.t;
  a_bits : Network.id list;   (** first operand inputs, LSB first *)
  b_bits : Network.id list;   (** second operand inputs, LSB first *)
  out_bits : Network.id list; (** result nodes, LSB first *)
}

val ripple_adder : int -> datapath
(** [n]-bit ripple-carry adder; outputs [n] sum bits plus carry-out as the
    last element.  The long carry chain makes it glitch-prone. *)

val carry_select_adder : ?block:int -> int -> datapath
(** Carry-select organization (default block size 4): shorter critical path
    and more balanced arrival times than ripple, at more gates. *)

val carry_lookahead_adder : ?block:int -> int -> datapath
(** Block carry-lookahead (default 4-bit blocks): generate/propagate terms
    computed in parallel inside each block, block carries rippling between
    blocks — the classic fast adder whose extra logic raises capacitance. *)

val array_multiplier : int -> datapath
(** [n x n] array multiplier with [2n] product bits — the classic
    spurious-transition generator (10-40%% of its activity is glitches). *)

val carry_save_multiplier : int -> datapath
(** [n x n] multiplier with Wallace-style carry-save reduction of the
    partial products (3:2 compressors per column) and one final ripple
    stage: shallower and better balanced than the array form, hence less
    glitchy — the structure [25]'s low-power multiplier builds on. *)

val comparator : int -> datapath
(** The Fig. 1 circuit: computes [A > B] over [n]-bit operands as a single
    output (out_bits is a singleton).  Built as the standard iterative
    chain from MSB to LSB. *)

val equality : int -> datapath
(** [A = B] single-output comparator. *)

val parity_tree : int -> Network.t * Network.id list
(** XOR tree over [n] inputs, output named "parity". *)

val mux_compare : int -> Network.t * Network.id
(** The guarded-evaluation demonstrator of [44]: two comparison blocks over
    the same [n]-bit operands — a magnitude comparator (A > B) and an
    equality checker — selected by an extra input [sel] into one output
    [z].  Whichever block the mux ignores is unobservable, so its whole
    cone can be guarded.  Returns the network and the [sel] input id;
    inputs are ordered [sel, a0..a(n-1), b0..b(n-1)]. *)

val operand_stimulus :
  (int * int) list -> width:int -> bool array list
(** Encode (a, b) word pairs as input vectors for a [datapath] network
    (a's bits first, then b's, LSB first). *)

val output_word : (string * bool) list -> prefix:string -> int
(** Decode named outputs [prefix0, prefix1, ...] into an integer. *)
