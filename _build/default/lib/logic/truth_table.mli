(** Dense truth tables for small functions (up to 20 inputs).

    Used as an exact oracle in tests and as the exchange format between
    two-level covers, BDDs and expressions for technology-mapping patterns
    and FSM next-state functions. *)

type t

val create : int -> t
(** [create n] is the constant-0 function of [n] variables.
    Raises [Invalid_argument] if [n < 0] or [n > 20]. *)

val num_vars : t -> int
val num_minterms : t -> int
(** [2 ^ num_vars]. *)

val get : t -> int -> bool
(** Value on the minterm whose bit [i] is variable [i]'s value. *)

val set : t -> int -> bool -> unit

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] minterm codes. *)

val of_expr : int -> Expr.t -> t
(** Tabulate an expression over [n] variables. *)

val of_bdd : int -> Bdd.t -> t

val to_expr : t -> Expr.t
(** Canonical sum-of-minterms expression (not minimized). *)

val ones : t -> int
(** Number of satisfying minterms. *)

val probability : t -> float
(** [ones / 2^n] — exact signal probability under uniform inputs. *)

val equal : t -> t -> bool
val copy : t -> t

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
(** Pointwise connectives.  Raise [Invalid_argument] on arity mismatch. *)

val cofactor : t -> int -> bool -> t
(** Same arity; the cofactored variable becomes irrelevant. *)

val pp : Format.formatter -> t -> unit
(** Bit string, minterm 0 first. *)
