type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

let tru = Const true
let fls = Const false
let var i = Var i

let not_ = function
  | Const b -> Const (not b)
  | Not e -> e
  | e -> Not e

let flatten_and es =
  List.concat_map (function And xs -> xs | e -> [ e ]) es

let flatten_or es =
  List.concat_map (function Or xs -> xs | e -> [ e ]) es

let and_list es =
  let es = flatten_and es in
  if List.exists (fun e -> e = Const false) es then Const false
  else
    match List.filter (fun e -> e <> Const true) es with
    | [] -> Const true
    | [ e ] -> e
    | es -> And es

let or_list es =
  let es = flatten_or es in
  if List.exists (fun e -> e = Const true) es then Const true
  else
    match List.filter (fun e -> e <> Const false) es with
    | [] -> Const false
    | [ e ] -> e
    | es -> Or es

let ( &&& ) a b = and_list [ a; b ]
let ( ||| ) a b = or_list [ a; b ]

let ( ^^^ ) a b =
  match a, b with
  | Const false, e | e, Const false -> e
  | Const true, e | e, Const true -> not_ e
  | a, b -> Xor (a, b)

let xnor a b = not_ (a ^^^ b)
let implies a b = not_ a ||| b
let ite c t e = (c &&& t) ||| (not_ c &&& e)

let rec eval env = function
  | Const b -> b
  | Var i -> env i
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Xor (a, b) -> eval env a <> eval env b

let support e =
  let module IS = Set.Make (Int) in
  let rec go acc = function
    | Const _ -> acc
    | Var i -> IS.add i acc
    | Not e -> go acc e
    | And es | Or es -> List.fold_left go acc es
    | Xor (a, b) -> go (go acc a) b
  in
  IS.elements (go IS.empty e)

let max_var e = match List.rev (support e) with [] -> -1 | v :: _ -> v

let rec literal_count = function
  | Const _ -> 0
  | Var _ -> 1
  | Not e -> literal_count e
  | And es | Or es -> List.fold_left (fun n e -> n + literal_count e) 0 es
  | Xor (a, b) -> literal_count a + literal_count b

let rec depth = function
  | Const _ | Var _ -> 0
  | Not e -> 1 + depth e
  | And es | Or es -> 1 + List.fold_left (fun d e -> max d (depth e)) 0 es
  | Xor (a, b) -> 1 + max (depth a) (depth b)

let rec map_vars f = function
  | Const b -> Const b
  | Var i -> f i
  | Not e -> not_ (map_vars f e)
  | And es -> and_list (List.map (map_vars f) es)
  | Or es -> or_list (List.map (map_vars f) es)
  | Xor (a, b) -> map_vars f a ^^^ map_vars f b

let rename_vars f e = map_vars (fun i -> Var (f i)) e

let cofactor v b e = map_vars (fun i -> if i = v then Const b else Var i) e

let simplify e = map_vars var e

let equal = ( = )
let compare = Stdlib.compare

let rec pp_prec pv prec ppf e =
  let open Format in
  match e with
  | Const true -> pp_print_char ppf '1'
  | Const false -> pp_print_char ppf '0'
  | Var i -> pv ppf i
  | Not (Var i) -> fprintf ppf "%a'" pv i
  | Not e -> fprintf ppf "(%a)'" (pp_prec pv 0) e
  | And es ->
    let body ppf () =
      pp_print_list
        ~pp_sep:(fun ppf () -> pp_print_char ppf '.')
        (pp_prec pv 2) ppf es
    in
    if prec > 2 then fprintf ppf "(%a)" body () else body ppf ()
  | Or es ->
    let body ppf () =
      pp_print_list
        ~pp_sep:(fun ppf () -> pp_print_string ppf " + ")
        (pp_prec pv 1) ppf es
    in
    if prec > 1 then fprintf ppf "(%a)" body () else body ppf ()
  | Xor (a, b) ->
    let body ppf () =
      fprintf ppf "%a ^ %a" (pp_prec pv 2) a (pp_prec pv 2) b
    in
    if prec > 1 then fprintf ppf "(%a)" body () else body ppf ()

let pp_with pv ppf e = pp_prec pv 0 ppf e

let pp ppf e = pp_with (fun ppf i -> Format.fprintf ppf "x%d" i) ppf e

let to_string e = Format.asprintf "%a" pp e
