(** Structural Boolean expressions.

    Expressions are the lingua franca of the toolkit: Boolean-network node
    functions, factored forms produced by kernel extraction, and gate
    patterns in the technology library are all [Expr.t] values over
    integer-indexed variables.  Variable [i] denotes the [i]-th fanin of
    whatever object carries the expression. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

val tru : t
val fls : t
val var : int -> t

val ( &&& ) : t -> t -> t
(** Binary conjunction (flattens nested [And]s). *)

val ( ||| ) : t -> t -> t
(** Binary disjunction (flattens nested [Or]s). *)

val ( ^^^ ) : t -> t -> t
(** Exclusive or. *)

val not_ : t -> t
(** Negation with involution collapsing: [not_ (not_ e)] = [e]. *)

val and_list : t list -> t
val or_list : t list -> t

val xnor : t -> t -> t
val implies : t -> t -> t
val ite : t -> t -> t -> t
(** [ite c t e] is (c AND t) OR (NOT c AND e). *)

val eval : (int -> bool) -> t -> bool
(** Evaluate under a variable assignment. *)

val support : t -> int list
(** Sorted list of variables occurring in the expression. *)

val max_var : t -> int
(** Largest variable index, or [-1] for a constant expression. *)

val literal_count : t -> int
(** Number of variable occurrences — the classic area cost of a factored
    form (§III.A.3). *)

val depth : t -> int
(** Height of the operator tree; [Var]/[Const] have depth 0. *)

val map_vars : (int -> t) -> t -> t
(** Simultaneous substitution of variables by expressions. *)

val rename_vars : (int -> int) -> t -> t
(** Substitution restricted to renaming. *)

val cofactor : int -> bool -> t -> t
(** [cofactor v b e] is [e] with variable [v] fixed to [b], followed by
    constant propagation. *)

val simplify : t -> t
(** Constant propagation, involution and idempotence cleanup.  Purely local;
    complete minimization lives in [Cover] and [Lp_synth]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Render with [a'] for negation, ['+'] for or, juxtaposition-like ['.'] for
    and; variables print as [x0, x1, ...]. *)

val pp_with : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** [pp] with a custom variable printer. *)

val to_string : t -> string
