type datapath = {
  net : Network.t;
  a_bits : Network.id list;
  b_bits : Network.id list;
  out_bits : Network.id list;
}

let xor2 = Expr.Xor (Expr.Var 0, Expr.Var 1)
let xnor2 = Expr.not_ xor2
let and2 = Expr.And [ Expr.Var 0; Expr.Var 1 ]
let or2 = Expr.Or [ Expr.Var 0; Expr.Var 1 ]
let andnot2 = Expr.And [ Expr.Var 0; Expr.not_ (Expr.Var 1) ]
let mux2 (* sel, a1, a0 *) =
  Expr.(ite (var 0) (var 1) (var 2))

let set_outputs net out_bits =
  List.iteri (fun k i -> Network.set_output net (Printf.sprintf "out%d" k) i)
    out_bits

let check_width n =
  if n < 1 || n > 30 then invalid_arg "Circuits: width must be in [1, 30]"

let operand_inputs net n =
  let a = List.init n (fun k -> Network.add_input ~name:(Printf.sprintf "a%d" k) net) in
  let b = List.init n (fun k -> Network.add_input ~name:(Printf.sprintf "b%d" k) net) in
  (a, b)

(* Full adder on nodes (a, b, cin) -> (sum, cout). *)
let full_adder net a b cin =
  let axb = Network.add_node net xor2 [ a; b ] in
  let s = Network.add_node net xor2 [ axb; cin ] in
  let g = Network.add_node net and2 [ a; b ] in
  let p = Network.add_node net and2 [ cin; axb ] in
  let cout = Network.add_node net or2 [ g; p ] in
  (s, cout)

let half_adder net a b =
  let s = Network.add_node net xor2 [ a; b ] in
  let c = Network.add_node net and2 [ a; b ] in
  (s, c)

let ripple_adder n =
  check_width n;
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let rec chain acc carry = function
    | [], [] -> List.rev (carry :: acc)
    | ai :: arest, bi :: brest ->
      let s, c = full_adder net ai bi carry in
      chain (s :: acc) c (arest, brest)
    | _ -> assert false
  in
  let out_bits =
    match a, b with
    | a0 :: arest, b0 :: brest ->
      let s0, c0 = half_adder net a0 b0 in
      s0 :: chain [] c0 (arest, brest)
    | _ -> assert false
  in
  set_outputs net out_bits;
  { net; a_bits = a; b_bits = b; out_bits }

let carry_select_adder ?(block = 4) n =
  check_width n;
  if block < 1 then invalid_arg "Circuits.carry_select_adder: block < 1";
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let a = Array.of_list a and b = Array.of_list b in
  (* Per block: two ripple chains assuming cin = 0 / 1, then muxes. *)
  let sums = ref [] in
  let carry = ref None (* None encodes constant 0 carry into block 0 *) in
  let lo = ref 0 in
  while !lo < n do
    let hi = min (n - 1) (!lo + block - 1) in
    (* chain with symbolic initial carry: for block 0, cin is constant 0 so
       use half adders; otherwise build both polarities and select. *)
    (match !carry with
    | None ->
      let c = ref None in
      for k = !lo to hi do
        match !c with
        | None ->
          let s, c0 = half_adder net a.(k) b.(k) in
          sums := s :: !sums;
          c := Some c0
        | Some cin ->
          let s, cout = full_adder net a.(k) b.(k) cin in
          sums := s :: !sums;
          c := Some cout
      done;
      carry := !c
    | Some cin_block ->
      let build assume =
        let c = ref None in
        let outs = ref [] in
        for k = !lo to hi do
          match !c with
          | None ->
            if assume then begin
              (* cin = 1: s = a xor b xor 1, c = a + b *)
              let s = Network.add_node net xnor2 [ a.(k); b.(k) ] in
              let cc = Network.add_node net or2 [ a.(k); b.(k) ] in
              outs := s :: !outs;
              c := Some cc
            end
            else begin
              let s, cc = half_adder net a.(k) b.(k) in
              outs := s :: !outs;
              c := Some cc
            end
          | Some cin ->
            let s, cout = full_adder net a.(k) b.(k) cin in
            outs := s :: !outs;
            c := Some cout
        done;
        (List.rev !outs, Option.get !c)
      in
      let outs0, c0 = build false in
      let outs1, c1 = build true in
      List.iter2
        (fun s1 s0 ->
          let m = Network.add_node net mux2 [ cin_block; s1; s0 ] in
          sums := m :: !sums)
        outs1 outs0;
      let cm = Network.add_node net mux2 [ cin_block; c1; c0 ] in
      carry := Some cm);
    lo := hi + 1
  done;
  let out_bits = List.rev !sums @ [ Option.get !carry ] in
  set_outputs net out_bits;
  { net; a_bits = Array.to_list a; b_bits = Array.to_list b; out_bits }

let carry_lookahead_adder ?(block = 4) n =
  check_width n;
  if block < 1 then invalid_arg "Circuits.carry_lookahead_adder: block < 1";
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let a = Array.of_list a and b = Array.of_list b in
  let g = Array.init n (fun k -> Network.add_node net and2 [ a.(k); b.(k) ]) in
  let p = Array.init n (fun k -> Network.add_node net xor2 [ a.(k); b.(k) ]) in
  let and_chain = function
    | [] -> invalid_arg "empty product"
    | x :: rest -> List.fold_left (fun acc y -> Network.add_node net and2 [ acc; y ]) x rest
  in
  let or_chain = function
    | [] -> invalid_arg "empty sum"
    | x :: rest -> List.fold_left (fun acc y -> Network.add_node net or2 [ acc; y ]) x rest
  in
  let sums = ref [] in
  let carry_in = ref None in
  let lo = ref 0 in
  while !lo < n do
    let hi = min (n - 1) (!lo + block - 1) in
    (* Carry into each block position, expanded over the block's g/p and
       the incoming carry: c_k = g_{k-1} + p_{k-1} g_{k-2} + ... + (prod p) cin. *)
    let carry_at = Array.make (hi - !lo + 2) None in
    carry_at.(0) <- !carry_in;
    for k = 1 to hi - !lo + 1 do
      let terms = ref [] in
      (* term j: g_{lo+k-1-j} ANDed with the j propagates above it *)
      for j = 0 to k - 1 do
        let gen = g.(!lo + k - 1 - j) in
        let props = List.init j (fun m -> p.(!lo + k - 1 - m)) in
        terms := (match props with [] -> gen | _ -> and_chain (gen :: props)) :: !terms
      done;
      (match carry_at.(0) with
      | Some cin ->
        let all_p = List.init k (fun m -> p.(!lo + m)) in
        terms := and_chain (cin :: all_p) :: !terms
      | None -> ());
      carry_at.(k) <- Some (or_chain !terms)
    done;
    for k = !lo to hi do
      let s =
        match carry_at.(k - !lo) with
        | None -> p.(k) (* first bit, cin = 0 *)
        | Some c -> Network.add_node net xor2 [ p.(k); c ]
      in
      sums := s :: !sums
    done;
    carry_in := carry_at.(hi - !lo + 1);
    lo := hi + 1
  done;
  let out_bits = List.rev !sums @ [ Option.get !carry_in ] in
  set_outputs net out_bits;
  { net; a_bits = Array.to_list a; b_bits = Array.to_list b; out_bits }

let array_multiplier n =
  check_width n;
  if 2 * n > 30 then invalid_arg "Circuits.array_multiplier: too wide";
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let a = Array.of_list a and b = Array.of_list b in
  (* Row i: partial products a_j * b_i, accumulated by ripple rows. *)
  let pp i j = Network.add_node net and2 [ a.(j); b.(i) ] in
  (* acc holds the current partial sum bits from position i upward. *)
  let width = 2 * n in
  let acc = Array.make width None in
  for j = 0 to n - 1 do
    acc.(j) <- Some (pp 0 j)
  done;
  for i = 1 to n - 1 do
    let carry = ref None in
    for j = 0 to n - 1 do
      let p = pp i j in
      let pos = i + j in
      let cur = acc.(pos) in
      match cur, !carry with
      | None, None -> acc.(pos) <- Some p
      | Some s, None ->
        let sum, c = half_adder net s p in
        acc.(pos) <- Some sum;
        carry := Some c
      | None, Some c ->
        let sum, c' = half_adder net p c in
        acc.(pos) <- Some sum;
        carry := Some c'
      | Some s, Some c ->
        let sum, c' = full_adder net s p c in
        acc.(pos) <- Some sum;
        carry := Some c'
    done;
    (* Propagate the final row carry up. *)
    let rec prop pos c =
      if pos < width then
        match acc.(pos) with
        | None -> acc.(pos) <- Some c
        | Some s ->
          let sum, c' = half_adder net s c in
          acc.(pos) <- Some sum;
          prop (pos + 1) c'
    in
    (match !carry with Some c -> prop (i + n) c | None -> ())
  done;
  (* Unfilled high positions can only appear for n = 1. *)
  let out_bits =
    List.init width (fun k ->
        match acc.(k) with
        | Some s -> s
        | None -> Network.add_node net (Expr.And [ Expr.Var 0; Expr.not_ (Expr.Var 0) ]) [ a.(0) ])
  in
  set_outputs net out_bits;
  { net; a_bits = Array.to_list a; b_bits = Array.to_list b; out_bits }

let carry_save_multiplier n =
  check_width n;
  if 2 * n > 30 then invalid_arg "Circuits.carry_save_multiplier: too wide";
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let arr_a = Array.of_list a and arr_b = Array.of_list b in
  let width = 2 * n in
  (* Columns of partial-product bits, then Wallace reduction with 3:2 and
     2:2 compressors until every column holds at most two bits. *)
  let columns = Array.make width [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let pp = Network.add_node net and2 [ arr_a.(j); arr_b.(i) ] in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  let reduced = ref false in
  while not !reduced do
    reduced := true;
    for k = 0 to width - 1 do
      match columns.(k) with
      | x :: y :: z :: rest ->
        reduced := false;
        let s, c = full_adder net x y z in
        columns.(k) <- rest @ [ s ];
        columns.(k + 1) <- c :: columns.(k + 1)
      | [ _; _ ] | [ _ ] | [] -> ()
    done
  done;
  (* Final carry-propagate stage: one ripple chain over the two rows. *)
  let out = Array.make width None in
  let carry = ref None in
  for k = 0 to width - 1 do
    let bits = columns.(k) @ (match !carry with Some c -> [ c ] | None -> []) in
    match bits with
    | [] -> ()
    | [ x ] ->
      out.(k) <- Some x;
      carry := None
    | [ x; y ] ->
      let s, c = half_adder net x y in
      out.(k) <- Some s;
      carry := Some c
    | [ x; y; z ] ->
      let s, c = full_adder net x y z in
      out.(k) <- Some s;
      carry := Some c
    | _ -> invalid_arg "Circuits.carry_save_multiplier: reduction failed"
  done;
  let out_bits =
    List.init width (fun k ->
        match out.(k) with
        | Some s -> s
        | None ->
          Network.add_node net
            (Expr.And [ Expr.Var 0; Expr.not_ (Expr.Var 0) ])
            [ arr_a.(0) ])
  in
  set_outputs net out_bits;
  { net; a_bits = a; b_bits = b; out_bits }

let comparator n =
  check_width n;
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let arr_a = Array.of_list a and arr_b = Array.of_list b in
  (* MSB-first chain: gt = a.b' + eq_msb . gt_rest *)
  let msb = n - 1 in
  let gt = ref (Network.add_node net andnot2 [ arr_a.(msb); arr_b.(msb) ]) in
  let eq = ref None in
  for k = msb - 1 downto 0 do
    let eq_k =
      Network.add_node net xnor2 [ arr_a.(k + 1); arr_b.(k + 1) ]
    in
    let eq_prefix =
      match !eq with
      | None -> eq_k
      | Some e -> Network.add_node net and2 [ e; eq_k ]
    in
    eq := Some eq_prefix;
    let gt_here = Network.add_node net andnot2 [ arr_a.(k); arr_b.(k) ] in
    let masked = Network.add_node net and2 [ eq_prefix; gt_here ] in
    gt := Network.add_node net or2 [ !gt; masked ]
  done;
  set_outputs net [ !gt ];
  { net; a_bits = a; b_bits = b; out_bits = [ !gt ] }

let equality n =
  check_width n;
  let net = Network.create () in
  let a, b = operand_inputs net n in
  let xnors =
    List.map2 (fun x y -> Network.add_node net xnor2 [ x; y ]) a b
  in
  let rec tree = function
    | [] -> assert false
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | x :: y :: rest -> Network.add_node net and2 [ x; y ] :: pair rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      tree (pair xs)
  in
  let out = tree xnors in
  set_outputs net [ out ];
  { net; a_bits = a; b_bits = b; out_bits = [ out ] }

let mux_compare n =
  check_width n;
  let net = Network.create () in
  let sel = Network.add_input ~name:"sel" net in
  let a, b = operand_inputs net n in
  let arr_a = Array.of_list a and arr_b = Array.of_list b in
  (* Magnitude block (A > B), MSB-first chain. *)
  let msb = n - 1 in
  let gt = ref (Network.add_node net andnot2 [ arr_a.(msb); arr_b.(msb) ]) in
  let eq_prefix = ref None in
  for k = msb - 1 downto 0 do
    let eq_k = Network.add_node net xnor2 [ arr_a.(k + 1); arr_b.(k + 1) ] in
    let prefix =
      match !eq_prefix with
      | None -> eq_k
      | Some e -> Network.add_node net and2 [ e; eq_k ]
    in
    eq_prefix := Some prefix;
    let here = Network.add_node net andnot2 [ arr_a.(k); arr_b.(k) ] in
    let masked = Network.add_node net and2 [ prefix; here ] in
    gt := Network.add_node net or2 [ !gt; masked ]
  done;
  (* Equality block (A = B), its own xnor tree so the cones are disjoint. *)
  let xnors = List.map2 (fun x y -> Network.add_node net xnor2 [ x; y ]) a b in
  let rec tree = function
    | [] -> assert false
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | x :: y :: rest -> Network.add_node net and2 [ x; y ] :: pair rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      tree (pair xs)
  in
  let eq_out = tree xnors in
  let z = Network.add_node ~name:"z" net mux2 [ sel; !gt; eq_out ] in
  Network.set_output net "z" z;
  (net, sel)

let parity_tree n =
  check_width n;
  let net = Network.create () in
  let ins = List.init n (fun k -> Network.add_input ~name:(Printf.sprintf "x%d" k) net) in
  let rec tree = function
    | [] -> assert false
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | x :: y :: rest -> Network.add_node net xor2 [ x; y ] :: pair rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      tree (pair xs)
  in
  let out = tree ins in
  Network.set_output net "parity" out;
  (net, ins)

let operand_stimulus pairs ~width =
  List.map
    (fun (x, y) ->
      Array.init (2 * width) (fun k ->
          if k < width then x land (1 lsl k) <> 0
          else y land (1 lsl (k - width)) <> 0))
    pairs

let output_word outs ~prefix =
  List.fold_left
    (fun acc (nm, v) ->
      if v && String.length nm > String.length prefix
         && String.sub nm 0 (String.length prefix) = prefix then
        match int_of_string_opt (String.sub nm (String.length prefix)
                                   (String.length nm - String.length prefix))
        with
        | Some k -> acc lor (1 lsl k)
        | None -> acc
      else acc)
    0 outs
