type input_dist = float array

let check_dist stg q =
  if Array.length q <> Stg.num_input_codes stg then
    invalid_arg "Markov: input distribution arity mismatch";
  let s = Array.fold_left ( +. ) 0.0 q in
  if Float.abs (s -. 1.0) > 1e-6 then
    invalid_arg "Markov: input distribution does not sum to 1"

let uniform_inputs stg =
  let n = Stg.num_input_codes stg in
  Array.make n (1.0 /. float_of_int n)

let biased_inputs stg ~bit_probs =
  if Array.length bit_probs <> Stg.num_inputs stg then
    invalid_arg "Markov.biased_inputs: bit arity mismatch";
  Array.init (Stg.num_input_codes stg) (fun code ->
      let p = ref 1.0 in
      Array.iteri
        (fun k pk ->
          let bit = code land (1 lsl k) <> 0 in
          p := !p *. (if bit then pk else 1.0 -. pk))
        bit_probs;
      !p)

let transition_matrix stg q =
  check_dist stg q;
  let n = Stg.num_states stg in
  let p = Array.make_matrix n n 0.0 in
  for s = 0 to n - 1 do
    for i = 0 to Stg.num_input_codes stg - 1 do
      let s' = Stg.next stg s i in
      p.(s).(s') <- p.(s).(s') +. q.(i)
    done
  done;
  p

let steady_state ?(iterations = 10_000) ?(epsilon = 1e-12) stg q =
  let p = transition_matrix stg q in
  let n = Stg.num_states stg in
  let pi = ref (Array.make n (1.0 /. float_of_int n)) in
  let avg = Array.make n 0.0 in
  let rec go k =
    if k >= iterations then ()
    else begin
      let nxt = Array.make n 0.0 in
      for s = 0 to n - 1 do
        for s' = 0 to n - 1 do
          nxt.(s') <- nxt.(s') +. (!pi.(s) *. p.(s).(s'))
        done
      done;
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        delta := !delta +. Float.abs (nxt.(s) -. !pi.(s))
      done;
      (* Cesàro average damps periodic chains. *)
      for s = 0 to n - 1 do
        avg.(s) <- 0.5 *. (nxt.(s) +. !pi.(s))
      done;
      pi := nxt;
      if !delta > epsilon then go (k + 1)
    end
  in
  go 0;
  let total = Array.fold_left ( +. ) 0.0 avg in
  if total = 0.0 then !pi else Array.map (fun x -> x /. total) avg

let edge_weights stg q =
  check_dist stg q;
  let pi = steady_state stg q in
  let n = Stg.num_states stg in
  let w = Array.make_matrix n n 0.0 in
  for s = 0 to n - 1 do
    for i = 0 to Stg.num_input_codes stg - 1 do
      let s' = Stg.next stg s i in
      w.(s).(s') <- w.(s).(s') +. (pi.(s) *. q.(i))
    done
  done;
  w

let self_loop_probability stg q =
  let w = edge_weights stg q in
  let total = ref 0.0 in
  Array.iteri (fun s row -> total := !total +. row.(s)) w;
  !total

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let expected_output_activity stg q =
  check_dist stg q;
  let pi = steady_state stg q in
  let codes = Stg.num_input_codes stg in
  let acc = ref 0.0 in
  for s = 0 to Stg.num_states stg - 1 do
    for i = 0 to codes - 1 do
      let o1 = Stg.output stg s i and s' = Stg.next stg s i in
      for i' = 0 to codes - 1 do
        let o2 = Stg.output stg s' i' in
        acc :=
          !acc
          +. pi.(s) *. q.(i) *. q.(i') *. float_of_int (popcount (o1 lxor o2))
      done
    done
  done;
  !acc
