(** State transition graphs: completely specified, deterministic Mealy
    machines over binary input/output alphabets (§III.C).

    States are abstract indices; {!Encode} assigns them binary codes, and
    {!Fsm_synth} turns an encoded machine into logic plus flip-flops. *)

type t

val create :
  ?name:string -> ?state_names:string array -> num_states:int
  -> num_inputs:int -> num_outputs:int
  -> next:(int -> int -> int) -> output:(int -> int -> int) -> unit -> t
(** [create ~num_states ~num_inputs ~num_outputs ~next ~output ()] tabulates
    the machine: [next s i] and [output s i] for every state [s] and input
    code [i] in [0, 2^num_inputs).  Raises [Invalid_argument] on
    out-of-range next states or outputs, or on [num_inputs > 12]. *)

val name : t -> string
val num_states : t -> int
val num_inputs : t -> int
(** Input bits. *)

val num_input_codes : t -> int
val num_outputs : t -> int
(** Output bits. *)

val next : t -> int -> int -> int
val output : t -> int -> int -> int
val state_name : t -> int -> string

val has_self_loop : t -> int -> int -> bool
(** [next s i = s] — the loop-edges that gated-clock FSM optimization [4]
    disables next-state computation for. *)

val reachable : t -> from:int -> int list
(** States reachable from the given one (inclusive), sorted. *)

val edge_list : t -> (int * int * int * int) list
(** All (state, input code, next state, output code) tuples. *)

val pp : Format.formatter -> t -> unit
