type edge = {
  src : int;
  dst : int;
  mutable weight : int;
  functional : float;
  glitchy : float;
  cap : float;
}

type t = {
  delays : float array;
  mutable edge_list : edge list;
}

let register_clock_cost = 0.5

let create ~num_vertices ~delays =
  if Array.length delays <> num_vertices then
    invalid_arg "Retime.create: delay arity mismatch";
  Array.iter
    (fun d -> if d < 0.0 then invalid_arg "Retime.create: negative delay")
    delays;
  { delays; edge_list = [] }

let add_edge t ~src ~dst ~weight ?(functional = 0.1) ?glitchy ?(cap = 1.0) () =
  let n = Array.length t.delays in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Retime.add_edge: endpoint out of range";
  if weight < 0 then invalid_arg "Retime.add_edge: negative weight";
  let glitchy =
    match glitchy with Some g -> g | None -> 2.0 *. functional
  in
  t.edge_list <-
    { src; dst; weight; functional; glitchy; cap } :: t.edge_list

let edges t = t.edge_list
let num_vertices t = Array.length t.delays

(* Longest-delay vertex arrival over the zero-register subgraph. *)
let deltas t =
  let n = num_vertices t in
  let indeg = Array.make n 0 in
  let zero_out = Array.make n [] in
  List.iter
    (fun e ->
      if e.weight = 0 then begin
        indeg.(e.dst) <- indeg.(e.dst) + 1;
        zero_out.(e.src) <- e.dst :: zero_out.(e.src)
      end)
    t.edge_list;
  let delta = Array.map (fun d -> d) t.delays in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr processed;
    List.iter
      (fun v ->
        if delta.(u) +. t.delays.(v) > delta.(v) then
          delta.(v) <- delta.(u) +. t.delays.(v);
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      zero_out.(u)
  done;
  if !processed <> n then
    invalid_arg "Retime: zero-register cycle (no legal clock period)";
  delta

let clock_period t =
  Array.fold_left max 0.0 (deltas t)

let retimed_weight r e = e.weight + r.(e.dst) - r.(e.src)

let is_legal t r =
  Array.length r = num_vertices t
  && List.for_all (fun e -> retimed_weight r e >= 0) t.edge_list

let apply t r =
  if not (is_legal t r) then invalid_arg "Retime.apply: illegal retiming";
  {
    delays = t.delays;
    edge_list =
      List.map (fun e -> { e with weight = retimed_weight r e }) t.edge_list;
  }

(* The FEAS heuristic: iterate |V| times, incrementing the lag of every
   vertex whose arrival exceeds the target period. *)
let feas t c =
  let n = num_vertices t in
  let r = Array.make n 0 in
  let rec iterate k =
    if k > n then ()
    else begin
      let trial = apply t (Array.copy r) in
      let delta = deltas trial in
      let any = ref false in
      Array.iteri
        (fun v d ->
          if d > c +. 1e-9 then begin
            r.(v) <- r.(v) + 1;
            any := true
          end)
        delta;
      if !any && is_legal t r then iterate (k + 1)
    end
  in
  (try iterate 1 with Invalid_argument _ -> ());
  (* Normalize so the host keeps lag 0. *)
  let base = r.(0) in
  let r = Array.map (fun x -> x - base) r in
  if is_legal t r then begin
    match clock_period (apply t r) with
    | p when p <= c +. 1e-9 -> Some (r, p)
    | _ -> None
    | exception Invalid_argument _ -> None
  end
  else None

let min_period t =
  let lo = Array.fold_left max 0.0 t.delays in
  let hi =
    Array.fold_left ( +. ) 0.0 t.delays +. 1.0
  in
  let rec search lo hi best iter =
    if iter = 0 then best
    else begin
      let mid = 0.5 *. (lo +. hi) in
      match feas t mid with
      | Some (r, p) -> search lo (min mid p) (Some (r, p)) (iter - 1)
      | None -> search mid hi best (iter - 1)
    end
  in
  match search lo hi None 48 with
  | Some (r, p) -> (r, p)
  | None ->
    (* The identity retiming is always legal. *)
    (Array.make (num_vertices t) 0, clock_period t)

let power_cost t =
  List.fold_left
    (fun acc e ->
      let wire =
        if e.weight >= 1 then e.cap *. e.functional else e.cap *. e.glitchy
      in
      acc +. wire +. (register_clock_cost *. float_of_int e.weight))
    0.0 t.edge_list

let register_count t =
  List.fold_left (fun acc e -> acc + e.weight) 0 t.edge_list

let climb t ~period ~start ~cost =
  let n = num_vertices t in
  let current = ref start in
  let current_cost = ref (cost start) in
  let improved = ref true in
  while !improved do
    improved := false;
    for v = 1 to n - 1 do
      List.iter
        (fun delta ->
          let r = Array.copy !current in
          r.(v) <- r.(v) + delta;
          if is_legal t r then
            match clock_period (apply t r) with
            | p when p <= period +. 1e-9 ->
              let c = cost r in
              if c < !current_cost then begin
                current := r;
                current_cost := c;
                improved := true
              end
            | _ -> ()
            | exception Invalid_argument _ -> ())
        [ 1; -1 ]
    done
  done;
  !current

let of_network net ~result ?(input_registers = 1) () =
  let logic =
    List.filter (fun i -> not (Network.is_input net i)) (Network.node_ids net)
  in
  let index = Hashtbl.create 64 in
  List.iteri (fun k i -> Hashtbl.replace index i (k + 1)) logic;
  let delays =
    Array.of_list (0.0 :: List.map (fun i -> Network.delay net i) logic)
  in
  let g = create ~num_vertices:(List.length logic + 1) ~delays in
  let cycles = max 1 result.Event_sim.cycles in
  let rate tbl i =
    float_of_int (Option.value (Hashtbl.find_opt tbl i) ~default:0)
    /. float_of_int cycles
  in
  let activities i =
    ( rate result.Event_sim.functional i,
      max (rate result.Event_sim.total i) (rate result.Event_sim.functional i) )
  in
  List.iter
    (fun i ->
      let dst = Hashtbl.find index i in
      List.iter
        (fun f ->
          let functional, glitchy = activities f in
          let cap = Network.cap net f in
          if Network.is_input net f then
            add_edge g ~src:0 ~dst ~weight:input_registers ~functional
              ~glitchy ~cap ()
          else
            add_edge g ~src:(Hashtbl.find index f) ~dst ~weight:0 ~functional
              ~glitchy ~cap ())
        (Network.fanins net i))
    logic;
  List.iter
    (fun (_, o) ->
      let functional, glitchy = activities o in
      add_edge g ~src:(Hashtbl.find index o) ~dst:0 ~weight:0 ~functional
        ~glitchy ~cap:(Network.cap net o) ())
    (Network.outputs net);
  g

let min_registers t ~period =
  let start =
    match feas t period with
    | Some (r, _) -> r
    | None -> invalid_arg "Retime.min_registers: period below minimum"
  in
  let cost r =
    let g = apply t r in
    (register_count g, power_cost g)
  in
  climb t ~period ~start ~cost

let low_power t ~period =
  let start =
    match feas t period with
    | Some (r, _) -> r
    | None -> invalid_arg "Retime.low_power: period below minimum"
  in
  climb t ~period ~start ~cost:(fun r -> power_cost (apply t r))
