lib/seq/seq_circuit.mli: Event_sim Network Stimulus
