lib/seq/seq_circuit.ml: Array Event_sim Hashtbl List Network
