lib/seq/retime.ml: Array Event_sim Hashtbl List Network Option Queue
