lib/seq/seq_estimate.ml: Activity Array Float Hashtbl List Network Option Queue Seq_circuit
