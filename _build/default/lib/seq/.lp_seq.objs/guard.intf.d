lib/seq/guard.mli: Expr Network Seq_circuit Stimulus
