lib/seq/retime.mli: Event_sim Network
