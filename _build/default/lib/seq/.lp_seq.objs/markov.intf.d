lib/seq/markov.mli: Stg
