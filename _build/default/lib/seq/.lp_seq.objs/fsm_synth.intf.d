lib/seq/fsm_synth.mli: Encode Lowpower Markov Network Seq_circuit Stg
