lib/seq/markov.ml: Array Float Stg
