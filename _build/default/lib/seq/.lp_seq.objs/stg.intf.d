lib/seq/stg.mli: Format
