lib/seq/encode.ml: Array Float Hashtbl List Lowpower Markov Stg
