lib/seq/encode.mli: Lowpower Markov Stg
