lib/seq/stg.ml: Array Format Hashtbl List Printf
