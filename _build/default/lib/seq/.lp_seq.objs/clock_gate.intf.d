lib/seq/clock_gate.mli: Fsm_synth Markov Stg
