lib/seq/precompute.mli: Expr Network Seq_circuit Stimulus
