lib/seq/seq_estimate.mli: Hashtbl Network Seq_circuit Stimulus
