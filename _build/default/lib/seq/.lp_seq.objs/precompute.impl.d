lib/seq/precompute.ml: Array Bdd Expr Hashtbl List Network Seq_circuit
