lib/seq/fsm_synth.ml: Array Cover Encode Expr Hashtbl List Lowpower Markov Network Printf Scanf Seq_circuit Stg Truth_table
