lib/seq/guard.ml: Array Bdd Cover Expr Hashtbl List Network Printf Seq_circuit
