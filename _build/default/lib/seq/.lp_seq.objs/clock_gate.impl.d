lib/seq/clock_gate.ml: Expr Fsm_synth List Markov Network Printf Seq_circuit
