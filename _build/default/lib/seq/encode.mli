(** State encoding for low power (§III.C.1; [35], [47], [18]).

    The objective: given steady-state transition weights w(s, s'), choose
    binary codes so that frequently-taken transitions connect codes at small
    Hamming distance — ideally uni-distant — minimizing expected flip-flop
    toggles per cycle.  Area (the complexity of the resulting next-state
    logic) is the competing concern the survey warns about; {!Fsm_synth}
    measures it after the fact. *)

type t = {
  bits : int;
  codes : int array; (** state -> code; injective, codes < 2^bits *)
}

val min_bits : int -> int
(** Bits needed to encode that many states. *)

val validate : num_states:int -> t -> unit
(** Raises [Invalid_argument] on duplicate or out-of-range codes. *)

val binary : num_states:int -> t
(** State [s] gets code [s]. *)

val gray : num_states:int -> t
(** State [s] gets the [s]-th Gray code. *)

val one_hot : num_states:int -> t
(** [num_states] bits, one per state. *)

val random : Lowpower.Rng.t -> num_states:int -> t
(** Random permutation of the minimal-width code space. *)

val weighted_activity : Stg.t -> Markov.input_dist -> t -> float
(** Expected state-register bit toggles per cycle:
    [sum w(s,s') * hamming(code s, code s')]. *)

val low_power :
  ?bits:int -> ?restarts:int -> ?seed:int -> Stg.t -> Markov.input_dist -> t
(** Minimize {!weighted_activity}: greedy placement seeded by the heaviest
    transition edges (high-weight pairs get uni-distant codes where
    possible), then pairwise-swap hill climbing, best of [restarts]
    (default 4) randomized runs.  [bits] defaults to the minimal width. *)

val improve :
  ?sweeps:int -> Stg.t -> Markov.input_dist -> t -> t
(** Re-encoding ([18]): pairwise-swap descent from an existing encoding —
    never returns a worse one. *)
