type t = {
  fsm_name : string;
  state_names : string array;
  num_inputs : int;
  num_outputs : int;
  next_tbl : int array array;
  out_tbl : int array array;
}

let create ?(name = "fsm") ?state_names ~num_states ~num_inputs ~num_outputs
    ~next ~output () =
  if num_states <= 0 then invalid_arg "Stg.create: no states";
  if num_inputs < 0 || num_inputs > 12 then
    invalid_arg "Stg.create: input bits must be in [0, 12]";
  if num_outputs < 0 then invalid_arg "Stg.create: negative output bits";
  let codes = 1 lsl num_inputs in
  let next_tbl =
    Array.init num_states (fun s ->
        Array.init codes (fun i ->
            let n = next s i in
            if n < 0 || n >= num_states then
              invalid_arg "Stg.create: next state out of range";
            n))
  in
  let out_tbl =
    Array.init num_states (fun s ->
        Array.init codes (fun i ->
            let o = output s i in
            if o < 0 || o >= 1 lsl num_outputs then
              invalid_arg "Stg.create: output out of range";
            o))
  in
  let state_names =
    match state_names with
    | Some a ->
      if Array.length a <> num_states then
        invalid_arg "Stg.create: state_names arity mismatch";
      a
    | None -> Array.init num_states (Printf.sprintf "s%d")
  in
  { fsm_name = name; state_names; num_inputs; num_outputs; next_tbl; out_tbl }

let name t = t.fsm_name
let num_states t = Array.length t.next_tbl
let num_inputs t = t.num_inputs
let num_input_codes t = 1 lsl t.num_inputs
let num_outputs t = t.num_outputs
let next t s i = t.next_tbl.(s).(i)
let output t s i = t.out_tbl.(s).(i)
let state_name t s = t.state_names.(s)

let has_self_loop t s i = next t s i = s

let reachable t ~from =
  let seen = Hashtbl.create 16 in
  let rec go s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      for i = 0 to num_input_codes t - 1 do
        go (next t s i)
      done
    end
  in
  go from;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

let edge_list t =
  List.concat
    (List.init (num_states t) (fun s ->
         List.init (num_input_codes t) (fun i ->
             (s, i, next t s i, output t s i))))

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "fsm %s: %d states, %d input bits, %d output bits@,"
    t.fsm_name (num_states t) t.num_inputs t.num_outputs;
  List.iter
    (fun (s, i, n, o) ->
      Format.fprintf ppf "  %s --%d/%d--> %s@," t.state_names.(s) i o
        t.state_names.(n))
    (edge_list t);
  Format.pp_close_box ppf ()
