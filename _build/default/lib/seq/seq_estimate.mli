(** Power estimation of sequential circuits (§V / §III.C; [28] Monteiro &
    Devadas, "power estimation of sequential logic circuits under
    user-specified input sequences").

    A combinational estimator applied to a sequential circuit needs the
    {e state} statistics, not just input statistics: present-state lines
    are not uniform and not independent of each other.  This module
    computes the exact steady-state distribution over register states (by
    enumerating the reachable chain) and derives each node's switching
    activity from it; the user-specified-sequence variant simply replays a
    given input sequence. *)

type t = {
  state_probs : (int, float) Hashtbl.t;
      (** steady-state probability per register-state code (LSB = first
          register in [Seq_circuit.registers] order) *)
  node_activity : (Network.id, float) Hashtbl.t;
      (** expected transitions per cycle, per combinational node *)
  ff_toggle_rate : float;  (** expected register toggles per cycle *)
  switched_capacitance : float; (** cap-weighted node activity per cycle *)
}

val steady_state :
  ?max_states:int -> Seq_circuit.t -> input_bit_probs:float array -> t
(** Exact analysis under temporally independent inputs with the given
    per-bit 1-probabilities: enumerate reachable states from the initial
    one, solve the chain by power iteration, and average node toggles over
    consecutive (state, input) pairs.  Raises [Invalid_argument] if the
    circuit has more than 16 primary-input bits or more registers than
    [max_states] (default 4096) can cover, or if the reachable set exceeds
    [max_states]. *)

val of_sequence : Seq_circuit.t -> Stimulus.t -> t
(** The user-specified-sequence variant: exact per-node activity for one
    concrete input sequence (state probabilities are the visit
    frequencies).  Raises like [Seq_circuit.simulate]. *)

val white_noise_error : t -> Seq_circuit.t -> float
(** How wrong the naive approach is: relative error of the switched
    capacitance predicted by treating every register output as an
    independent p = 0.5 input (the assumption [28] replaces), against this
    estimate. *)
