(** Retiming (§III.C.2; Leiserson–Saxe [24], power-aware variant [29]).

    A synchronous circuit is a directed graph: vertices are combinational
    blocks with propagation delays, edges carry register counts.  A
    retiming [r] moves [r v] registers from the outputs to the inputs of
    vertex [v]; edge weights become [w(e) + r(head) - r(tail)] and must stay
    non-negative.  Minimum-period retiming finds the legal [r] with the
    smallest achievable clock period.

    The power observation of [29]: a combinational signal glitches, but a
    register output only toggles on settled-value changes — so registers
    act as glitch filters, and among all minimum-period retimings the one
    holding registers on high-glitch edges dissipates least.  Each edge
    therefore carries two activities: [functional] (settled changes per
    cycle) and [glitchy] (total transitions per cycle of the signal when it
    is not register-buffered). *)

type edge = {
  src : int;
  dst : int;
  mutable weight : int;     (** registers on the edge *)
  functional : float;       (** activity seen after a register *)
  glitchy : float;          (** activity seen on the bare wire *)
  cap : float;              (** capacitance of the edge's wire + fanin *)
}

type t

val create : num_vertices:int -> delays:float array -> t
(** Vertex 0 is conventionally the host (environment), with delay 0.
    Raises [Invalid_argument] on arity mismatch or negative delays. *)

val add_edge :
  t -> src:int -> dst:int -> weight:int -> ?functional:float -> ?glitchy:float
  -> ?cap:float -> unit -> unit
(** Defaults: functional 0.1, glitchy = 2x functional, cap 1.  Raises
    [Invalid_argument] on bad endpoints or negative weight. *)

val edges : t -> edge list
val num_vertices : t -> int

val clock_period : t -> float
(** Longest combinational (zero-register) path delay.  Raises
    [Invalid_argument] if some zero-weight cycle exists. *)

val is_legal : t -> int array -> bool
(** All retimed edge weights non-negative (host vertex 0 fixed at 0). *)

val apply : t -> int array -> t
(** A copy with retimed edge weights.  Raises [Invalid_argument] if
    illegal. *)

val min_period : t -> int array * float
(** Binary search over candidate periods with the FEAS iteration; returns
    the retiming and its period. *)

val power_cost : t -> float
(** Switching-power proxy of the current register placement: for each edge,
    [cap * functional] if the edge holds at least one register (glitches
    filtered) else [cap * glitchy], plus a per-register clocking cost. *)

val register_count : t -> int

val low_power : t -> period:float -> int array
(** Among retimings meeting the given period (must be >= the minimum), hill
    climb on single-vertex moves to minimize {!power_cost}.  Returns the
    best retiming found. *)

val of_network :
  Network.t -> result:Event_sim.result -> ?input_registers:int -> unit -> t
(** Bridge from a measured circuit: vertex 0 is the host, one vertex per
    logic node (delay = the node's [Network.delay]); every fanin connection
    becomes an edge whose [functional] and [glitchy] activities are the
    driving node's settled and total transition rates from the simulation
    [result], and whose capacitance is the driving node's [cap].  Edges
    from the host to input consumers carry [input_registers] registers
    (default 1, the usual registered-input design); output-to-host edges
    carry none.  The returned graph is ready for {!min_period} /
    {!low_power}, with costs grounded in measured glitch data. *)

val min_registers : t -> period:float -> int array
(** The paper's other classic retiming objective: among retimings meeting
    the period, minimize the total register count (hill climbing on
    single-vertex moves; power cost breaks ties).  Raises
    [Invalid_argument] if the period is below the minimum. *)
