(** Steady-state analysis of an STG driven by a stochastic input source.

    Low-power state encoding needs the {e weighted} transition frequencies
    w(s, s') — how often the machine actually moves between each state pair
    — because the encoding objective is expected flip-flop toggles per
    cycle, not worst case (§III.C.1). *)

type input_dist = float array
(** Probability of each input code; must sum to 1. *)

val uniform_inputs : Stg.t -> input_dist

val biased_inputs : Stg.t -> bit_probs:float array -> input_dist
(** Independent input bits with the given 1-probabilities. *)

val transition_matrix : Stg.t -> input_dist -> float array array
(** [p.(s).(s')] = probability of moving to [s'] from [s] in one cycle. *)

val steady_state :
  ?iterations:int -> ?epsilon:float -> Stg.t -> input_dist -> float array
(** Stationary distribution by power iteration from uniform (default 10,000
    iterations, stopping at L1 change below [epsilon] = 1e-12).  For
    periodic chains this returns the Cesàro average, which is what expected
    switching needs. *)

val edge_weights : Stg.t -> input_dist -> float array array
(** [w.(s).(s')] = steady-state probability of the s -> s' transition
    occurring in a random cycle; entries sum to 1. *)

val self_loop_probability : Stg.t -> input_dist -> float
(** Fraction of cycles spent on loop edges — the clock-gating opportunity
    that [4] exploits. *)

val expected_output_activity : Stg.t -> input_dist -> float
(** Expected output-code bit toggles per cycle at steady state (consecutive
    outputs along the chain, input codes independent across cycles). *)
