type t = {
  bits : int;
  codes : int array;
}

let min_bits n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 1

let validate ~num_states enc =
  if Array.length enc.codes <> num_states then
    invalid_arg "Encode.validate: code arity mismatch";
  let seen = Hashtbl.create num_states in
  Array.iter
    (fun c ->
      if c < 0 || c >= 1 lsl enc.bits then
        invalid_arg "Encode.validate: code out of range";
      if Hashtbl.mem seen c then
        invalid_arg "Encode.validate: duplicate code";
      Hashtbl.add seen c ())
    enc.codes

let binary ~num_states =
  { bits = min_bits num_states; codes = Array.init num_states (fun s -> s) }

let gray ~num_states =
  {
    bits = min_bits num_states;
    codes = Array.init num_states (fun s -> s lxor (s lsr 1));
  }

let one_hot ~num_states =
  { bits = num_states; codes = Array.init num_states (fun s -> 1 lsl s) }

let random rng ~num_states =
  let bits = min_bits num_states in
  let space = Array.init (1 lsl bits) (fun c -> c) in
  Lowpower.Rng.shuffle rng space;
  { bits; codes = Array.sub space 0 num_states }

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let weighted_activity stg q enc =
  validate ~num_states:(Stg.num_states stg) enc;
  let w = Markov.edge_weights stg q in
  let acc = ref 0.0 in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun s' weight ->
          if weight > 0.0 then
            acc :=
              !acc
              +. weight
                 *. float_of_int (popcount (enc.codes.(s) lxor enc.codes.(s'))))
        row)
    w;
  !acc

(* Symmetrized edge weights sorted heaviest-first, self-loops dropped
   (they cost nothing under any encoding). *)
let heavy_edges stg q =
  let w = Markov.edge_weights stg q in
  let n = Stg.num_states stg in
  let edges = ref [] in
  for s = 0 to n - 1 do
    for s' = s + 1 to n - 1 do
      let weight = w.(s).(s') +. w.(s').(s) in
      if weight > 0.0 then edges := (weight, s, s') :: !edges
    done
  done;
  List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a) !edges

(* Greedy constructive placement: process edges heaviest first; when one
   endpoint is placed, put the other on a free code at minimal Hamming
   distance. *)
let greedy_place rng stg q bits =
  let n = Stg.num_states stg in
  let codes = Array.make n (-1) in
  let used = Hashtbl.create n in
  let free_codes () =
    List.filter
      (fun c -> not (Hashtbl.mem used c))
      (List.init (1 lsl bits) (fun c -> c))
  in
  let place s c =
    codes.(s) <- c;
    Hashtbl.add used c ()
  in
  let nearest_free anchor =
    let free = free_codes () in
    List.fold_left
      (fun best c ->
        match best with
        | None -> Some c
        | Some b ->
          if popcount (c lxor anchor) < popcount (b lxor anchor) then Some c
          else best)
      None free
  in
  List.iter
    (fun (_, s, s') ->
      match codes.(s) >= 0, codes.(s') >= 0 with
      | true, true -> ()
      | false, false ->
        (match free_codes () with
        | [] -> ()
        | c :: _ ->
          place s c;
          (match nearest_free c with
          | Some c' -> place s' c'
          | None -> ()))
      | true, false ->
        (match nearest_free codes.(s) with
        | Some c' -> place s' c'
        | None -> ())
      | false, true ->
        (match nearest_free codes.(s') with
        | Some c -> place s c
        | None -> ()))
    (heavy_edges stg q);
  (* Unconnected states take whatever is left, in random order. *)
  let leftovers = Array.of_list (free_codes ()) in
  Lowpower.Rng.shuffle rng leftovers;
  let k = ref 0 in
  Array.iteri
    (fun s c ->
      if c < 0 then begin
        codes.(s) <- leftovers.(!k);
        incr k
      end)
    codes;
  { bits; codes }

let activity_of w codes =
  let acc = ref 0.0 in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun s' weight ->
          if weight > 0.0 then
            acc := !acc +. (weight *. float_of_int (popcount (codes.(s) lxor codes.(s')))))
        row)
    w;
  !acc

(* Pairwise swap descent, also trying moves to free codes. *)
let descend ?(sweeps = 20) stg q enc =
  let n = Stg.num_states stg in
  let w = Markov.edge_weights stg q in
  let enc = { enc with codes = Array.copy enc.codes } in
  let cost = ref (activity_of w enc.codes) in
  let space = 1 lsl enc.bits in
  let owner = Array.make space (-1) in
  Array.iteri (fun s c -> owner.(c) <- s) enc.codes;
  let improved = ref true in
  let sweep () =
    improved := false;
    for s = 0 to n - 1 do
      for c = 0 to space - 1 do
        let cs = enc.codes.(s) in
        if c <> cs then begin
          let other = owner.(c) in
          (* Swap s's code with code c (owned or free). *)
          enc.codes.(s) <- c;
          owner.(c) <- s;
          owner.(cs) <- other;
          if other >= 0 then enc.codes.(other) <- cs;
          let nc = activity_of w enc.codes in
          if nc < !cost -. 1e-12 then begin
            cost := nc;
            improved := true
          end
          else begin
            enc.codes.(s) <- cs;
            owner.(cs) <- s;
            owner.(c) <- other;
            if other >= 0 then enc.codes.(other) <- c
          end
        end
      done
    done
  in
  let rec go k =
    if k < sweeps then begin
      sweep ();
      if !improved then go (k + 1)
    end
  in
  go 0;
  enc

let low_power ?bits ?(restarts = 4) ?(seed = 42) stg q =
  let num_states = Stg.num_states stg in
  let bits =
    match bits with
    | Some b ->
      if 1 lsl b < num_states then
        invalid_arg "Encode.low_power: too few bits";
      b
    | None -> min_bits num_states
  in
  let rng = Lowpower.Rng.create seed in
  let best = ref None in
  for _ = 1 to restarts do
    let enc = descend stg q (greedy_place rng stg q bits) in
    let c = weighted_activity stg q enc in
    match !best with
    | Some (bc, _) when bc <= c -> ()
    | Some _ | None -> best := Some (c, enc)
  done;
  match !best with
  | Some (_, enc) -> enc
  | None -> binary ~num_states

let improve ?sweeps stg q enc =
  validate ~num_states:(Stg.num_states stg) enc;
  descend ?sweeps stg q enc
