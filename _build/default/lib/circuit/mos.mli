(** Series-parallel transistor networks of static CMOS complex gates.

    A complex gate computes [out = NOT f] where the NMOS pulldown network
    conducts exactly when [f] is 1.  The physical structure matters for
    power: series stacks have parasitic {e internal nodes} whose charging
    and discharging dissipates energy that depends on the {e ordering} of
    transistors within the stack (§II.A).

    The digital charge model used throughout (documented here once):
    after each input vector, an internal node is
    - 0 if it has a conducting path to ground,
    - 1 if it has a conducting path to the output node while the output is
      high,
    - otherwise it holds its previous charge.
    The output node is always driven to [NOT f].  Energy is the sum over
    nodes of capacitance times transitions.  This is the standard
    abstraction used by the transistor-reordering literature the survey
    cites ([32], [42]). *)

type t =
  | Input of int          (** transistor gated by input [i] *)
  | Series of t list      (** head of the list is nearest the output *)
  | Parallel of t list

val conducts : t -> (int -> bool) -> bool
(** Does the network conduct under the given input assignment? *)

val to_expr : t -> Expr.t
(** The conduction function [f] (series = AND, parallel = OR). *)

val output_expr : t -> Expr.t
(** The gate's logic function [NOT f]. *)

val num_inputs : t -> int
(** 1 + highest input index used. *)

val transistor_count : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] on empty series/parallel groups or negative
    input indices. *)

type gate
(** A pulldown network elaborated into a node/edge graph with capacitances:
    output node, ground node, and one internal node per series junction. *)

val elaborate : ?internal_cap:float -> ?output_cap:float -> t -> gate
(** Build the charge-model graph.  Default internal node capacitance 0.5,
    output capacitance 1.0 (relative units). *)

val internal_node_count : gate -> int

type sim_state
(** Charge state of all nodes of one gate. *)

val initial_state : gate -> (int -> bool) -> sim_state
(** Settle the gate on an initial vector (no energy charged). *)

val step : gate -> sim_state -> (int -> bool) -> sim_state * float
(** Apply the next input vector; returns the new state and the switched
    capacitance (cap-weighted node transitions) of this step. *)

val expected_energy_per_cycle :
  gate -> input_probs:float array -> float
(** Exact expected switched capacitance per cycle for temporally independent
    input vectors with the given per-input 1-probabilities: enumerates all
    vector pairs.  Raises [Invalid_argument] above 10 inputs. *)

val trace_energy : gate -> (int -> bool) list -> float
(** Total switched capacitance over a vector trace (first vector
    initializes). *)

val elmore_delay : t -> ?arrival:(int -> float) -> unit -> float
(** Worst-case pulldown delay estimate: for each input, the Elmore-style
    resistance-capacitance sum from its stack position to the output (unit
    R per transistor, node capacitances as elaborated), plus the input's
    arrival time; the maximum over inputs is the gate delay.  Transistor
    ordering changes this (§II.A: late signals belong near the output). *)
