type objective =
  | Min_power
  | Min_delay
  | Weighted of float

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let rec count_orderings = function
  | Mos.Input _ -> 1
  | Mos.Parallel ts ->
    List.fold_left (fun n t -> n * count_orderings t) 1 ts
  | Mos.Series ts ->
    factorial (List.length ts)
    * List.fold_left (fun n t -> n * count_orderings t) 1 ts

let rec orderings_of = function
  | Mos.Input i -> [ Mos.Input i ]
  | Mos.Parallel ts ->
    (* Parallel order is electrically irrelevant; keep as-is but recurse. *)
    let rec cross = function
      | [] -> [ [] ]
      | t :: rest ->
        let tails = cross rest in
        List.concat_map
          (fun v -> List.map (fun tail -> v :: tail) tails)
          (orderings_of t)
    in
    List.map (fun ts -> Mos.Parallel ts) (cross ts)
  | Mos.Series ts ->
    let rec cross = function
      | [] -> [ [] ]
      | t :: rest ->
        let tails = cross rest in
        List.concat_map
          (fun v -> List.map (fun tail -> v :: tail) tails)
          (orderings_of t)
    in
    let variants = cross ts in
    List.concat_map
      (fun ts -> List.map (fun p -> Mos.Series p) (permutations ts))
      variants

let orderings net =
  Mos.validate net;
  let series_fact = count_orderings net in
  if series_fact > 10_000 then
    invalid_arg "Reorder.orderings: ordering space too large";
  List.sort_uniq compare (orderings_of net)

let evaluate net ~input_probs ?(arrival = fun _ -> 0.0) () =
  let g = Mos.elaborate net in
  let power = Mos.expected_energy_per_cycle g ~input_probs in
  let delay = Mos.elmore_delay net ~arrival () in
  (power, delay)

let best objective net ~input_probs ?(arrival = fun _ -> 0.0) () =
  let candidates = orderings net in
  let scored =
    List.map
      (fun c ->
        let p, d = evaluate c ~input_probs ~arrival () in
        (c, p, d))
      candidates
  in
  let max_d =
    List.fold_left (fun acc (_, _, d) -> max acc d) 1.0e-12 scored
  in
  let max_p =
    List.fold_left (fun acc (_, p, _) -> max acc p) 1.0e-12 scored
  in
  let score (_, p, d) =
    match objective with
    | Min_power -> p
    | Min_delay -> d
    | Weighted w -> (w *. p /. max_p) +. ((1.0 -. w) *. d /. max_d)
  in
  match scored with
  | [] -> invalid_arg "Reorder.best: no orderings"
  | first :: rest ->
    List.fold_left
      (fun acc c -> if score c < score acc then c else acc)
      first rest

let conduction_prob input_probs sub =
  let man = Bdd.manager () in
  Bdd.probability man (fun v -> input_probs.(v)) (Bdd.of_expr man (Mos.to_expr sub))

let rec heuristic_power_order net ~input_probs =
  match net with
  | Mos.Input _ -> net
  | Mos.Parallel ts ->
    Mos.Parallel (List.map (fun t -> heuristic_power_order t ~input_probs) ts)
  | Mos.Series ts ->
    let ts = List.map (fun t -> heuristic_power_order t ~input_probs) ts in
    (* Head is nearest the output: order by descending conduction
       probability so the rarest conductor sits at the ground end. *)
    let keyed = List.map (fun t -> (conduction_prob input_probs t, t)) ts in
    let sorted =
      List.sort (fun (a, _) (b, _) -> Float.compare b a) keyed
    in
    Mos.Series (List.map snd sorted)

let rec latest_arrival arrival = function
  | Mos.Input i -> arrival i
  | Mos.Series ts | Mos.Parallel ts ->
    List.fold_left (fun acc t -> max acc (latest_arrival arrival t)) 0.0 ts

let rec heuristic_delay_order net ~arrival =
  match net with
  | Mos.Input _ -> net
  | Mos.Parallel ts ->
    Mos.Parallel (List.map (fun t -> heuristic_delay_order t ~arrival) ts)
  | Mos.Series ts ->
    let ts = List.map (fun t -> heuristic_delay_order t ~arrival) ts in
    (* Latest arrival nearest the output (list head). *)
    let keyed = List.map (fun t -> (latest_arrival arrival t, t)) ts in
    let sorted = List.sort (fun (a, _) (b, _) -> Float.compare b a) keyed in
    Mos.Series (List.map snd sorted)
