(** Transistor reordering within complex gates (§II.A, [32], [42]).

    Reordering the transistors of a series stack does not change the gate's
    logic function, but it changes which internal nodes charge and
    discharge, hence the gate's power, and it changes each input's
    resistance path to the output, hence the gate's delay.  This module
    searches the ordering space. *)

type objective =
  | Min_power          (** expected internal + output switched capacitance *)
  | Min_delay          (** worst arrival-aware Elmore delay *)
  | Weighted of float  (** [Weighted w]: w * power + (1-w) * delay_norm *)

val orderings : Mos.t -> Mos.t list
(** All structures reachable by permuting every series group.  The list is
    deduplicated; its size is the product of factorials of series lengths.
    Raises [Invalid_argument] if that exceeds 10,000. *)

val evaluate :
  Mos.t -> input_probs:float array -> ?arrival:(int -> float) -> unit
  -> float * float
(** [(power, delay)] of one ordering: exact expected switched capacitance
    per cycle, and arrival-aware Elmore delay. *)

val best :
  objective -> Mos.t -> input_probs:float array -> ?arrival:(int -> float)
  -> unit -> Mos.t * float * float
(** Exhaustive search over {!orderings}; returns the winner with its power
    and delay. *)

val heuristic_power_order : Mos.t -> input_probs:float array -> Mos.t
(** The classic greedy rule: within each series stack place the transistor
    with the lowest conduction probability nearest the ground end, so the
    internal nodes above it are disconnected from ground most of the time
    and see fewer charge/discharge events. *)

val heuristic_delay_order : Mos.t -> arrival:(int -> float) -> Mos.t
(** Place late-arriving signals nearest the output (the well-known delay
    rule the paper contrasts with power-driven ordering). *)
