type t =
  | Input of int
  | Series of t list
  | Parallel of t list

let rec conducts net env =
  match net with
  | Input i -> env i
  | Series ts -> List.for_all (fun t -> conducts t env) ts
  | Parallel ts -> List.exists (fun t -> conducts t env) ts

let rec to_expr = function
  | Input i -> Expr.var i
  | Series ts -> Expr.and_list (List.map to_expr ts)
  | Parallel ts -> Expr.or_list (List.map to_expr ts)

let output_expr net = Expr.not_ (to_expr net)

let num_inputs net = Expr.max_var (to_expr net) + 1

let rec transistor_count = function
  | Input _ -> 1
  | Series ts | Parallel ts ->
    List.fold_left (fun n t -> n + transistor_count t) 0 ts

let rec validate = function
  | Input i -> if i < 0 then invalid_arg "Mos.validate: negative input index"
  | Series [] | Parallel [] ->
    invalid_arg "Mos.validate: empty series/parallel group"
  | Series ts | Parallel ts -> List.iter validate ts

type gate = {
  edges : (int * int * int) list; (* node u, node v, gating input *)
  caps : float array;             (* per node; ground carries 0 *)
  structure : t;
  out_node : int;
  gnd_node : int;
}

let elaborate ?(internal_cap = 0.5) ?(output_cap = 1.0) net =
  validate net;
  let next = ref 2 in
  let edges = ref [] in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let rec walk t u v =
    match t with
    | Input i -> edges := (u, v, i) :: !edges
    | Parallel ts -> List.iter (fun t -> walk t u v) ts
    | Series ts ->
      let rec chain u = function
        | [] -> invalid_arg "Mos.elaborate: empty series"
        | [ last ] -> walk last u v
        | t :: rest ->
          let m = fresh () in
          walk t u m;
          chain m rest
      in
      chain u ts
  in
  walk net 0 1;
  let caps = Array.make !next internal_cap in
  caps.(0) <- output_cap;
  caps.(1) <- 0.0;
  { edges = List.rev !edges; caps; structure = net; out_node = 0; gnd_node = 1 }

let internal_node_count g = Array.length g.caps - 2

type sim_state = bool array (* per-node charge; indexes as in [gate] *)

(* Union-find over gate nodes restricted to conducting edges. *)
let components g env =
  let n = Array.length g.caps in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun (u, v, i) -> if env i then union u v) g.edges;
  Array.init n find

let resolve g prev env =
  let f = conducts g.structure env in
  let out = not f in
  let comp = components g env in
  let gnd = comp.(g.gnd_node) and outc = comp.(g.out_node) in
  Array.init (Array.length g.caps) (fun i ->
      if i = g.gnd_node then false
      else if i = g.out_node then out
      else if comp.(i) = gnd then false
      else if comp.(i) = outc then out
      else prev.(i))

let initial_state g env =
  let zero = Array.make (Array.length g.caps) false in
  resolve g zero env

let step g state env =
  let next = resolve g state env in
  let energy = ref 0.0 in
  Array.iteri
    (fun i v -> if v <> state.(i) then energy := !energy +. g.caps.(i))
    next;
  (next, !energy)

let expected_energy_per_cycle g ~input_probs =
  let n = Array.length input_probs in
  if n > 10 then
    invalid_arg "Mos.expected_energy_per_cycle: too many inputs (max 10)";
  let prob_of code =
    let p = ref 1.0 in
    for k = 0 to n - 1 do
      let bit = code land (1 lsl k) <> 0 in
      p := !p *. (if bit then input_probs.(k) else 1.0 -. input_probs.(k))
    done;
    !p
  in
  let env_of code k = code land (1 lsl k) <> 0 in
  let total = ref 0.0 in
  for prev = 0 to (1 lsl n) - 1 do
    let p_prev = prob_of prev in
    if p_prev > 0.0 then begin
      let state = initial_state g (env_of prev) in
      for cur = 0 to (1 lsl n) - 1 do
        let p_cur = prob_of cur in
        if p_cur > 0.0 then begin
          let _, e = step g state (env_of cur) in
          total := !total +. (p_prev *. p_cur *. e)
        end
      done
    end
  done;
  !total

let trace_energy g = function
  | [] -> 0.0
  | first :: rest ->
    let state = ref (initial_state g first) in
    List.fold_left
      (fun acc env ->
        let next, e = step g !state env in
        state := next;
        acc +. e)
      0.0 rest

let elmore_delay net ?(arrival = fun _ -> 0.0) () =
  let g = elaborate net in
  (* Distance (series resistance) from each node up to the output along the
     stack structure; recompute per input as the worst conducting path is
     input-dependent, but for a ranking metric we use the all-conducting
     case: resistance = number of transistors between the input's source
     node and the output when everything conducts. *)
  let n = Array.length g.caps in
  (* BFS from output over edges (unit resistance per edge). *)
  let dist = Array.make n max_int in
  dist.(g.out_node) <- 0;
  let rec relax () =
    let changed = ref false in
    List.iter
      (fun (u, v, _) ->
        if dist.(u) < max_int && dist.(u) + 1 < dist.(v) then begin
          dist.(v) <- dist.(u) + 1;
          changed := true
        end;
        if dist.(v) < max_int && dist.(v) + 1 < dist.(u) then begin
          dist.(u) <- dist.(v) + 1;
          changed := true
        end)
      g.edges;
    if !changed then relax ()
  in
  relax ();
  (* Per input: Elmore-like cost = sum over nodes at or above the
     transistor's position of their capacitance times resistance depth,
     approximated by (depth of the transistor's upper node + 1) * cap above.
     We use: cost(i) = arrival(i) + sum over nodes u with dist(u) <= d_i of
     caps(u) * (d_i - dist(u) + 1), where d_i is the transistor's upper-node
     depth. *)
  List.fold_left
    (fun worst (u, _, i) ->
      let d_i = if dist.(u) = max_int then 0 else dist.(u) in
      let rc = ref 0.0 in
      for node = 0 to n - 1 do
        if dist.(node) <= d_i then
          rc := !rc +. (g.caps.(node) *. float_of_int (d_i - dist.(node) + 1))
      done;
      max worst (arrival i +. !rc))
    0.0 g.edges
