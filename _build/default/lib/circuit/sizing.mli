(** Transistor sizing under a delay constraint (§II.B, [42], [3]).

    Each logic node of a network carries a continuous size [s >= 1].  The
    delay of a node falls with its own size but its input pins load its
    fanins harder; its switched capacitance grows with its size.  Given a
    required arrival time at the outputs, the classic approach computes
    slack at every node and shrinks nodes with positive slack until slack
    is exhausted or minimum size is reached — trading unused speed for
    power. *)

type sizing = (Network.id, float) Hashtbl.t
(** Size per logic node (inputs are fixed drivers of size 1). *)

type delay_params = {
  intrinsic : float;   (** fixed self-delay per gate *)
  pin_cap : float;     (** input pin capacitance per unit of size *)
  output_load : float; (** load presented by each primary output *)
  drive_per_size : float; (** conductance per unit size *)
}

val default_delay_params : delay_params

val uniform : Network.t -> float -> sizing
(** All logic nodes at the given size. *)

val node_delay : delay_params -> Network.t -> sizing -> Network.id -> float
(** [intrinsic + load / (drive_per_size * s)] where load sums fanout pin
    capacitances (size-dependent) plus output loads. *)

val critical_delay : delay_params -> Network.t -> sizing -> float
(** Longest input-to-output path under the sized delay model. *)

val switched_capacitance :
  delay_params -> Network.t -> sizing -> activity:Activity.t -> float
(** Power cost: sum over nodes of activity times the capacitance they
    switch (own drain, proportional to size, plus fanout pins). *)

val size_for_power :
  ?step:float -> ?min_size:float -> delay_params -> Network.t
  -> required:float -> activity:Activity.t -> sizing -> sizing
(** Greedy slack-driven downsizing: starting from the given sizing,
    repeatedly shrink the positive-slack node with the best power gain by
    [step] (default 0.25) while the critical delay stays within [required];
    stop at [min_size] (default 1.0) or when no shrink is feasible.
    Raises [Invalid_argument] if the initial sizing already violates
    [required]. *)
