type sizing = (Network.id, float) Hashtbl.t

type delay_params = {
  intrinsic : float;
  pin_cap : float;
  output_load : float;
  drive_per_size : float;
}

let default_delay_params =
  { intrinsic = 0.5; pin_cap = 1.0; output_load = 2.0; drive_per_size = 1.0 }

let uniform net s =
  let sz = Hashtbl.create 64 in
  List.iter
    (fun i -> if not (Network.is_input net i) then Hashtbl.replace sz i s)
    (Network.node_ids net);
  sz

let size_of sz i = Option.value (Hashtbl.find_opt sz i) ~default:1.0

let load dp net sz i =
  let fanout_pins =
    List.fold_left
      (fun acc j -> acc +. (dp.pin_cap *. size_of sz j))
      0.0 (Network.fanouts net i)
  in
  let po_load =
    if List.exists (fun (_, j) -> j = i) (Network.outputs net) then
      dp.output_load
    else 0.0
  in
  fanout_pins +. po_load

let node_delay dp net sz i =
  dp.intrinsic +. (load dp net sz i /. (dp.drive_per_size *. size_of sz i))

let arrival_times dp net sz =
  let at = Hashtbl.create 64 in
  List.iter
    (fun i ->
      if Network.is_input net i then Hashtbl.replace at i 0.0
      else begin
        let latest =
          List.fold_left
            (fun d j -> max d (Hashtbl.find at j))
            0.0 (Network.fanins net i)
        in
        Hashtbl.replace at i (latest +. node_delay dp net sz i)
      end)
    (Network.topo_order net);
  at

let critical_delay dp net sz =
  let at = arrival_times dp net sz in
  List.fold_left (fun d (_, i) -> max d (Hashtbl.find at i)) 0.0 (Network.outputs net)

let switched_capacitance dp net sz ~activity =
  Hashtbl.fold
    (fun i a acc ->
      let drain = if Network.is_input net i then 0.0 else size_of sz i in
      let pins =
        List.fold_left
          (fun c j -> c +. (dp.pin_cap *. size_of sz j))
          0.0 (Network.fanouts net i)
      in
      acc +. (a *. (drain +. pins)))
    activity 0.0

let size_for_power ?(step = 0.25) ?(min_size = 1.0) dp net ~required ~activity
    sz0 =
  if critical_delay dp net sz0 > required +. 1e-9 then
    invalid_arg "Sizing.size_for_power: initial sizing violates constraint";
  let sz = Hashtbl.copy sz0 in
  let logic_nodes =
    List.filter (fun i -> not (Network.is_input net i)) (Network.node_ids net)
  in
  let try_shrink i =
    let s = size_of sz i in
    if s -. step < min_size -. 1e-9 then None
    else begin
      Hashtbl.replace sz i (s -. step);
      if critical_delay dp net sz <= required +. 1e-9 then begin
        let gain =
          Option.value (Hashtbl.find_opt activity i) ~default:0.0 *. step
        in
        Hashtbl.replace sz i s;
        Some gain
      end
      else begin
        Hashtbl.replace sz i s;
        None
      end
    end
  in
  let rec loop () =
    (* Pick the feasible shrink with the largest activity-weighted gain. *)
    let best =
      List.fold_left
        (fun acc i ->
          match try_shrink i with
          | None -> acc
          | Some gain ->
            (match acc with
            | Some (_, g) when g >= gain -> acc
            | Some _ | None -> Some (i, gain)))
        None logic_nodes
    in
    match best with
    | None -> ()
    | Some (i, _) ->
      Hashtbl.replace sz i (size_of sz i -. step);
      loop ()
  in
  loop ();
  sz
