lib/circuit/sizing.ml: Hashtbl List Network Option
