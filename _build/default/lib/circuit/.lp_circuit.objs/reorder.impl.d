lib/circuit/reorder.ml: Array Bdd Float List Mos
