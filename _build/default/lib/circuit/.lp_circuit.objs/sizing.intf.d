lib/circuit/sizing.mli: Activity Hashtbl Network
