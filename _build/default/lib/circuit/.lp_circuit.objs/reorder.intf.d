lib/circuit/reorder.mli: Mos
