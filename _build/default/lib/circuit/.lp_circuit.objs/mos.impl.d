lib/circuit/mos.ml: Array Expr List
