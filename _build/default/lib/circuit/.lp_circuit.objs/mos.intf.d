lib/circuit/mos.mli: Expr
