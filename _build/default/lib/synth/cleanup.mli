(** Structural network cleanup — the janitorial pass every synthesis flow
    runs between optimizations: constant propagation, double-inverter
    collapsing, single-fanin identity removal, and dead-node sweeping.

    All rewrites are local and function-preserving; [run] returns the
    number of changes so callers can iterate other passes to fixpoint. *)

val propagate_constants : Network.t -> int
(** Fold constant node functions into their fanouts ([f(…, 1, …)] becomes
    the cofactor); constant nodes that end up dead are left for {!sweep}.
    Returns the number of fanout rewrites. *)

val collapse_buffers : Network.t -> int
(** Rewire fanouts of identity nodes ([Var 0]) and double inverters
    directly to the underlying signal.  Output references are preserved
    (an output pointing at a buffer keeps the buffer). *)

val trim_fanins : Network.t -> int
(** Remove fanin references the node's function no longer reads (left
    behind by constant propagation), renumbering variables. *)

val sweep : Network.t -> int
(** [Network.sweep]: drop nodes unreachable from any output. *)

val run : Network.t -> int
(** All three, iterated until no pass changes anything; returns total
    changes. *)
