(** Technology library for tree-covering technology mapping (§III.B).

    Cells are described by NAND2/INV pattern trees over numbered leaves —
    the classic DAGON formulation [20].  A repeated leaf index inside a
    pattern (as in the XOR cell) requires the same subject-graph signal at
    both positions.  Physical data per cell: area, intrinsic delay, input
    pin capacitance and output capacitance; the power cost of instantiating
    a cell is the activity of its output net times its output capacitance
    plus the activity of each leaf net times the pin capacitance ([43],
    [48]). *)

type pattern =
  | L of int                    (** leaf; the int is a binding slot *)
  | Inv of pattern
  | Nand of pattern * pattern

type cell = {
  cell_name : string;
  pattern : pattern;
  func : Expr.t;        (** over leaf slots, must equal the pattern's function *)
  arity : int;          (** number of distinct leaf slots *)
  area : float;
  delay : float;
  pin_cap : float;      (** per input pin *)
  out_cap : float;
}

val pattern_func : pattern -> Expr.t
(** Logic function of a pattern over its leaf slots. *)

val pattern_leaves : pattern -> int list
(** Leaf slots in left-to-right order (duplicates preserved). *)

val make_cell :
  name:string -> pattern:pattern -> area:float -> delay:float
  -> pin_cap:float -> out_cap:float -> cell
(** Builds a cell, deriving [func] and [arity] from the pattern. *)

val default : cell list
(** A 14-cell static CMOS library: INV, NAND2-4, NOR2-3, AND2, OR2, AOI21,
    AOI22, OAI21, OAI22, XOR2, XNOR2.  Areas and delays grow with
    complexity; complex cells hide internal nets, which is where their
    power advantage comes from. *)

val find : cell list -> string -> cell
(** Lookup by name.  Raises [Not_found]. *)

val check : cell -> bool
(** Verifies [func] matches the pattern function (used in tests). *)
