type pattern =
  | L of int
  | Inv of pattern
  | Nand of pattern * pattern

type cell = {
  cell_name : string;
  pattern : pattern;
  func : Expr.t;
  arity : int;
  area : float;
  delay : float;
  pin_cap : float;
  out_cap : float;
}

let rec pattern_func = function
  | L k -> Expr.var k
  | Inv p -> Expr.not_ (pattern_func p)
  | Nand (p, q) -> Expr.not_ Expr.(pattern_func p &&& pattern_func q)

let rec pattern_leaves = function
  | L k -> [ k ]
  | Inv p -> pattern_leaves p
  | Nand (p, q) -> pattern_leaves p @ pattern_leaves q

let make_cell ~name ~pattern ~area ~delay ~pin_cap ~out_cap =
  let func = pattern_func pattern in
  let arity = Expr.max_var func + 1 in
  { cell_name = name; pattern; func; arity; area; delay; pin_cap; out_cap }

let default =
  let a = L 0 and b = L 1 and c = L 2 and d = L 3 in
  let and2 x y = Inv (Nand (x, y)) in
  let or2 x y = Nand (Inv x, Inv y) in
  [
    make_cell ~name:"INV" ~pattern:(Inv a)
      ~area:1.0 ~delay:1.0 ~pin_cap:1.0 ~out_cap:1.0;
    make_cell ~name:"NAND2" ~pattern:(Nand (a, b))
      ~area:2.0 ~delay:1.4 ~pin_cap:1.0 ~out_cap:1.4;
    make_cell ~name:"NAND3" ~pattern:(Nand (and2 a b, c))
      ~area:3.0 ~delay:1.8 ~pin_cap:1.0 ~out_cap:1.8;
    make_cell ~name:"NAND4" ~pattern:(Nand (and2 a b, and2 c d))
      ~area:4.0 ~delay:2.2 ~pin_cap:1.0 ~out_cap:2.2;
    make_cell ~name:"NOR2" ~pattern:(Inv (or2 a b))
      ~area:2.0 ~delay:1.6 ~pin_cap:1.0 ~out_cap:1.4;
    make_cell ~name:"NOR3" ~pattern:(Inv (or2 (or2 a b) c))
      ~area:3.0 ~delay:2.2 ~pin_cap:1.0 ~out_cap:1.8;
    make_cell ~name:"AND2" ~pattern:(and2 a b)
      ~area:2.5 ~delay:1.8 ~pin_cap:1.0 ~out_cap:1.2;
    make_cell ~name:"OR2" ~pattern:(or2 a b)
      ~area:2.5 ~delay:1.8 ~pin_cap:1.0 ~out_cap:1.2;
    make_cell ~name:"AOI21" ~pattern:(Inv (Nand (Nand (a, b), Inv c)))
      ~area:3.0 ~delay:2.0 ~pin_cap:1.0 ~out_cap:1.6;
    make_cell ~name:"AOI22"
      ~pattern:(Inv (Nand (Nand (a, b), Nand (c, d))))
      ~area:4.0 ~delay:2.4 ~pin_cap:1.0 ~out_cap:2.0;
    make_cell ~name:"OAI21" ~pattern:(Nand (or2 a b, c))
      ~area:3.0 ~delay:2.0 ~pin_cap:1.0 ~out_cap:1.6;
    make_cell ~name:"OAI22" ~pattern:(Nand (or2 a b, or2 c d))
      ~area:4.0 ~delay:2.4 ~pin_cap:1.0 ~out_cap:2.0;
    make_cell ~name:"XOR2"
      ~pattern:(Nand (Nand (a, Inv b), Nand (Inv a, b)))
      ~area:4.5 ~delay:2.6 ~pin_cap:1.1 ~out_cap:1.8;
    make_cell ~name:"XNOR2"
      ~pattern:(Nand (Nand (a, b), Nand (Inv a, Inv b)))
      ~area:4.5 ~delay:2.6 ~pin_cap:1.1 ~out_cap:1.8;
  ]

let find cells name =
  match List.find_opt (fun c -> c.cell_name = name) cells with
  | Some c -> c
  | None -> raise Not_found

let check cell =
  let n = cell.arity in
  if n > 20 then false
  else
    Truth_table.equal
      (Truth_table.of_expr n (pattern_func cell.pattern))
      (Truth_table.of_expr n cell.func)
