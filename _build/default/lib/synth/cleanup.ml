(* Substitute fanin [victim] of node [user] by rewriting [user]'s function
   so that references to position [pos] become [replacement]. *)
let rewrite_fanin net user pos replacement =
  let fanins = Network.fanins net user in
  let updated = List.mapi (fun k f -> if k = pos then replacement else f) fanins in
  Network.replace_func net user (Network.func net user) updated

let propagate_constants net =
  let changed = ref 0 in
  List.iter
    (fun i ->
      if not (Network.is_input net i) then
        match Network.func net i with
        | Expr.Const b ->
          (* Fold this constant into every fanout's local function. *)
          List.iter
            (fun user ->
              let fanins = Network.fanins net user in
              let f = Network.func net user in
              let f' =
                Expr.map_vars
                  (fun v ->
                    if List.nth fanins v = i then Expr.Const b else Expr.var v)
                  f
              in
              if not (Expr.equal f f') then begin
                Network.replace_func net user f' fanins;
                incr changed
              end)
            (Network.fanouts net i)
        | Expr.Var _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> ())
    (Network.node_ids net);
  !changed

(* The signal a node forwards unchanged, if any. *)
let forwarded net i =
  if Network.is_input net i then None
  else
    match Network.func net i, Network.fanins net i with
    | Expr.Var 0, [ f ] -> Some f
    | Expr.Not (Expr.Var 0), [ f ] ->
      (* Double inverter: forward the inner inverter's source. *)
      if Network.is_input net f then None
      else (
        match Network.func net f, Network.fanins net f with
        | Expr.Not (Expr.Var 0), [ g ] -> Some g
        | _, _ -> None)
    | _, _ -> None

let collapse_buffers net =
  let changed = ref 0 in
  List.iter
    (fun i ->
      match forwarded net i with
      | None -> ()
      | Some source ->
        List.iter
          (fun user ->
            let fanins = Network.fanins net user in
            List.iteri
              (fun pos f ->
                if f = i then begin
                  rewrite_fanin net user pos source;
                  incr changed
                end)
              fanins)
          (Network.fanouts net i))
    (Network.node_ids net);
  !changed

(* Drop fanins the local function no longer reads (left behind by constant
   propagation), renumbering the expression's variables. *)
let trim_fanins net =
  let changed = ref 0 in
  List.iter
    (fun i ->
      if not (Network.is_input net i) then begin
        let f = Network.func net i in
        let fanins = Network.fanins net i in
        let support = Expr.support f in
        if List.length support <> List.length fanins then begin
          let keep = List.map (fun v -> List.nth fanins v) support in
          let remap =
            let tbl = Hashtbl.create 8 in
            List.iteri (fun pos v -> Hashtbl.replace tbl v pos) support;
            fun v -> Hashtbl.find tbl v
          in
          Network.replace_func net i (Expr.rename_vars remap f) keep;
          incr changed
        end
      end)
    (Network.node_ids net);
  !changed

let sweep = Network.sweep

let run net =
  let rec go total =
    let c =
      propagate_constants net + collapse_buffers net + trim_fanins net
      + sweep net
    in
    if c = 0 then total else go (total + c)
  in
  go 0
