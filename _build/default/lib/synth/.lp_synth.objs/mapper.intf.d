lib/synth/mapper.mli: Activity Network Techlib
