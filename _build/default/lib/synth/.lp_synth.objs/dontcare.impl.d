lib/synth/dontcare.ml: Array Bdd Cover Expr Float Hashtbl List Network Option Probability Truth_table
