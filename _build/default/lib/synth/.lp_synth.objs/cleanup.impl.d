lib/synth/cleanup.ml: Expr Hashtbl List Network
