lib/synth/factor.mli: Expr Network
