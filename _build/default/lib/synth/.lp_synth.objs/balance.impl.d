lib/synth/balance.ml: Expr Hashtbl List Network Printf
