lib/synth/subject.mli: Expr Network
