lib/synth/techlib.mli: Expr
