lib/synth/subject.ml: Array Expr Float Hashtbl List Network
