lib/synth/balance.mli: Network
