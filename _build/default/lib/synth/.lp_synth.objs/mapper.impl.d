lib/synth/mapper.ml: Activity Array Expr Hashtbl List Network Option Printf Subject Techlib
