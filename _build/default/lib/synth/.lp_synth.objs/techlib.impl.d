lib/synth/techlib.ml: Expr List Truth_table
