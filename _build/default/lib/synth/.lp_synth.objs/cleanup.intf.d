lib/synth/cleanup.mli: Network
