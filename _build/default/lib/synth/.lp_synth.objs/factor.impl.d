lib/synth/factor.ml: Bdd Expr Hashtbl List Network Printf
