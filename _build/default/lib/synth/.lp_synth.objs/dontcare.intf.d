lib/synth/dontcare.mli: Network Truth_table
