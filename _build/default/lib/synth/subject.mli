(** Subject-graph construction: decompose a Boolean network into NAND2/INV
    primitives, the canonical form that technology-mapping patterns are
    matched against [20]. *)

val decompose : Network.t -> Network.t
(** A functionally equivalent network whose every logic node is either
    [INV] (function [Not (Var 0)], one fanin) or [NAND2]
    (function [Not (And [Var 0; Var 1])], two fanins).  And/Or lists are
    balanced into trees; Xor expands into the four-NAND form whose repeated
    leaves make the XOR library pattern matchable.  Structural hashing
    merges identical primitives.  Raises [Invalid_argument] if some node
    function is constant (run [Network.sweep]/simplification first). *)

val decompose_for_power :
  Network.t -> input_probs:float array -> Network.t
(** Activity-aware technology decomposition ([48] Tsui, Pedram & Despain):
    same NAND2/INV target as {!decompose}, but And/Or operand lists are
    ordered by signal probability before chaining so that the intermediate
    nodes sit at probabilities far from 1/2 — e.g. an AND chain absorbs its
    lowest-probability operand first, driving every internal conjunction
    toward 0 and its [2p(1-p)] activity toward nothing.  The resulting
    subject graph feeds the same {!Mapper}; experiment E7 quantifies the
    effect.  Raises like {!decompose}. *)

val is_subject_graph : Network.t -> bool
(** Check the invariant above. *)

val inv_func : Expr.t
val nand2_func : Expr.t
