let inv_func = Expr.Not (Expr.Var 0)
let nand2_func = Expr.Not (Expr.And [ Expr.Var 0; Expr.Var 1 ])

(* Structural hashing of primitives: key by (op, fanin ids). *)
type key = K_inv of int | K_nand of int * int

let decompose net =
  let out = Network.create () in
  let strash : (key, Network.id) Hashtbl.t = Hashtbl.create 256 in
  let mk_inv a =
    let key = K_inv a in
    match Hashtbl.find_opt strash key with
    | Some i -> i
    | None ->
      let i = Network.add_node out inv_func [ a ] in
      Hashtbl.add strash key i;
      i
  in
  let mk_nand a b =
    let a, b = if a <= b then a, b else b, a in
    let key = K_nand (a, b) in
    match Hashtbl.find_opt strash key with
    | Some i -> i
    | None ->
      let i = Network.add_node out nand2_func [ a; b ] in
      Hashtbl.add strash key i;
      i
  in
  let mk_and a b = mk_inv (mk_nand a b) in
  let mk_or a b = mk_nand (mk_inv a) (mk_inv b) in
  let rec balanced mk = function
    | [] -> invalid_arg "Subject.decompose: empty operand list"
    | [ x ] -> x
    | xs ->
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (k - 1) (x :: acc) rest
      in
      let half = List.length xs / 2 in
      let l, r = split half [] xs in
      mk (balanced mk l) (balanced mk r)
  in
  let rec build env = function
    | Expr.Const _ ->
      invalid_arg "Subject.decompose: constant node function"
    | Expr.Var v -> env.(v)
    | Expr.Not e -> mk_inv (build env e)
    | Expr.And es -> balanced mk_and (List.map (build env) es)
    | Expr.Or es -> balanced mk_or (List.map (build env) es)
    | Expr.Xor (a, b) ->
      let xa = build env a and xb = build env b in
      (* nand(nand(a, b'), nand(a', b)) = a xor b; shares the inverters. *)
      mk_nand (mk_nand xa (mk_inv xb)) (mk_nand (mk_inv xa) xb)
  in
  (* Map original node ids to subject node ids. *)
  let image = Hashtbl.create 256 in
  List.iter
    (fun i ->
      if Network.is_input net i then begin
        let j = Network.add_input ~name:(Network.name net i) out in
        Hashtbl.replace image i j
      end
      else begin
        let fanins = Network.fanins net i in
        let env =
          Array.of_list (List.map (Hashtbl.find image) fanins)
        in
        Hashtbl.replace image i (build env (Network.func net i))
      end)
    (Network.topo_order net);
  List.iter
    (fun (nm, i) -> Network.set_output out nm (Hashtbl.find image i))
    (Network.outputs net);
  out

(* Activity-aware decomposition: left-deep chains whose operand order is
   chosen by signal probability.  Probabilities are propagated with the
   independence approximation, which is all the ordering heuristic needs. *)
let decompose_for_power net ~input_probs =
  if Array.length input_probs <> List.length (Network.inputs net) then
    invalid_arg "Subject.decompose_for_power: input_probs arity mismatch";
  let out = Network.create () in
  let strash : (key, Network.id) Hashtbl.t = Hashtbl.create 256 in
  let prob : (Network.id, float) Hashtbl.t = Hashtbl.create 256 in
  let p_of i = Hashtbl.find prob i in
  let mk_inv a =
    let key = K_inv a in
    match Hashtbl.find_opt strash key with
    | Some i -> i
    | None ->
      let i = Network.add_node out inv_func [ a ] in
      Hashtbl.add strash key i;
      Hashtbl.replace prob i (1.0 -. p_of a);
      i
  in
  let mk_nand a b =
    let a, b = if a <= b then a, b else b, a in
    let key = K_nand (a, b) in
    match Hashtbl.find_opt strash key with
    | Some i -> i
    | None ->
      let i = Network.add_node out nand2_func [ a; b ] in
      Hashtbl.add strash key i;
      Hashtbl.replace prob i (1.0 -. (p_of a *. p_of b));
      i
  in
  let mk_and a b = mk_inv (mk_nand a b) in
  let mk_or a b = mk_nand (mk_inv a) (mk_inv b) in
  (* Decomposition of a wide operand list: operands are sorted so that the
     running combination leaves p = 1/2 as fast as possible, then the
     cheaper of a left-deep chain and a balanced tree is built — evaluated
     analytically on the internal nodes' 2p(1-p) activities (both the NAND
     and its inverter switch).  This per-node choice is the "targeting low
     power" step of [48]. *)
  let chain mk combine_p sort_key = function
    | [] -> invalid_arg "Subject.decompose_for_power: empty operand list"
    | operands ->
      let sorted =
        List.sort
          (fun x y -> Float.compare (sort_key (p_of x)) (sort_key (p_of y)))
          operands
      in
      let act p = 2.0 *. p *. (1.0 -. p) in
      let rec chain_cost acc_p acc = function
        | [] -> acc
        | p :: rest ->
          let q = combine_p acc_p p in
          chain_cost q (acc +. (2.0 *. act q)) rest
      in
      let rec balanced_cost ps =
        match ps with
        | [] | [ _ ] -> 0.0
        | ps ->
          let rec pair acc = function
            | a :: b :: rest ->
              let q = combine_p a b in
              pair ((q, 2.0 *. act q) :: acc) rest
            | [ a ] -> (a, 0.0) :: acc
            | [] -> acc
          in
          let level = List.rev (pair [] ps) in
          List.fold_left (fun acc (_, c) -> acc +. c) 0.0 level
          +. balanced_cost (List.map fst level)
      in
      (match sorted with
      | [] -> assert false
      | first :: rest ->
        let probs = List.map p_of sorted in
        let c_chain = chain_cost (p_of first) 0.0 (List.map p_of rest) in
        let c_bal = balanced_cost probs in
        if c_chain <= c_bal then List.fold_left mk first rest
        else begin
          let rec balance = function
            | [] -> assert false
            | [ x ] -> x
            | xs ->
              let rec pair = function
                | a :: b :: rest -> mk a b :: pair rest
                | [ a ] -> [ a ]
                | [] -> []
              in
              balance (pair xs)
          in
          balance sorted
        end)
  in
  let rec build env = function
    | Expr.Const _ ->
      invalid_arg "Subject.decompose_for_power: constant node function"
    | Expr.Var v -> env.(v)
    | Expr.Not e -> mk_inv (build env e)
    | Expr.And es ->
      (* Lowest probability first: internal conjunctions head to 0. *)
      chain mk_and (fun a b -> a *. b) (fun p -> p) (List.map (build env) es)
    | Expr.Or es ->
      (* Highest probability first: internal disjunctions head to 1. *)
      chain mk_or
        (fun a b -> 1.0 -. ((1.0 -. a) *. (1.0 -. b)))
        (fun p -> -. p)
        (List.map (build env) es)
    | Expr.Xor (a, b) ->
      let xa = build env a and xb = build env b in
      mk_nand (mk_nand xa (mk_inv xb)) (mk_nand (mk_inv xa) xb)
  in
  let image = Hashtbl.create 256 in
  List.iter
    (fun i ->
      if Network.is_input net i then begin
        let j = Network.add_input ~name:(Network.name net i) out in
        Hashtbl.replace prob j input_probs.(Network.input_index net i);
        Hashtbl.replace image i j
      end
      else begin
        let fanins = Network.fanins net i in
        let env = Array.of_list (List.map (Hashtbl.find image) fanins) in
        Hashtbl.replace image i (build env (Network.func net i))
      end)
    (Network.topo_order net);
  List.iter
    (fun (nm, i) -> Network.set_output out nm (Hashtbl.find image i))
    (Network.outputs net);
  out

let is_subject_graph net =
  List.for_all
    (fun i ->
      Network.is_input net i
      ||
      let f = Network.func net i and fanins = Network.fanins net i in
      (Expr.equal f inv_func && List.length fanins = 1)
      || (Expr.equal f nand2_func && List.length fanins = 2))
    (Network.node_ids net)
