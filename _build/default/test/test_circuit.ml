(* Tests for lp_circuit: Mos, Reorder, Sizing. *)

open Test_util

(* f = (a + b) . c — the complex gate from the paper's §II.A. *)
let aoi_pulldown = Mos.Series [ Mos.Parallel [ Mos.Input 0; Mos.Input 1 ]; Mos.Input 2 ]

let test_mos_conduction_and_function () =
  let env code v = code land (1 lsl v) <> 0 in
  (* Conducts iff (a | b) & c. *)
  for code = 0 to 7 do
    let expect = (env code 0 || env code 1) && env code 2 in
    Alcotest.(check bool) "conduction" expect
      (Mos.conducts aoi_pulldown (env code))
  done;
  let out = Mos.output_expr aoi_pulldown in
  Alcotest.(check bool) "output = not f" true
    (Truth_table.equal
       (Truth_table.of_expr 3 out)
       (Truth_table.of_expr 3 Expr.(not_ ((var 0 ||| var 1) &&& var 2))))

let test_mos_counts () =
  Alcotest.(check int) "transistors" 3 (Mos.transistor_count aoi_pulldown);
  Alcotest.(check int) "inputs" 3 (Mos.num_inputs aoi_pulldown);
  let g = Mos.elaborate aoi_pulldown in
  (* One internal node between the parallel pair and the series c. *)
  Alcotest.(check int) "internal nodes" 1 (Mos.internal_node_count g)

let test_mos_validation () =
  expect_invalid_arg "empty series" (fun () -> Mos.validate (Mos.Series []));
  expect_invalid_arg "negative input" (fun () ->
      Mos.validate (Mos.Input (-1)))

let test_mos_energy_nonnegative_and_output_driven () =
  let g = Mos.elaborate aoi_pulldown in
  let st = Mos.initial_state g (fun _ -> false) in
  (* Switch all inputs on: output falls, internal node discharges. *)
  let _, e = Mos.step g st (fun _ -> true) in
  Alcotest.(check bool) "energy positive on a full swing" true (e > 0.0)

let test_mos_no_change_no_energy () =
  let g = Mos.elaborate aoi_pulldown in
  let st = Mos.initial_state g (fun v -> v = 0) in
  let _, e = Mos.step g st (fun v -> v = 0) in
  check_close "same vector, no switching" 0.0 e

let test_mos_expected_energy_matches_trace () =
  (* Long random trace average should approach the analytic pairwise
     expectation. *)
  let g = Mos.elaborate aoi_pulldown in
  let probs = [| 0.5; 0.5; 0.5 |] in
  let expected = Mos.expected_energy_per_cycle g ~input_probs:probs in
  let r = rng () in
  let n = 40_000 in
  let trace =
    List.init n (fun _ ->
        let code = Lowpower.Rng.int r 8 in
        fun v -> code land (1 lsl v) <> 0)
  in
  let measured = Mos.trace_energy g trace /. float_of_int (n - 1) in
  check_close_rel ~eps:0.05 "pairwise model vs trace" expected measured

let test_mos_too_many_inputs () =
  let wide = Mos.Series (List.init 11 (fun i -> Mos.Input i)) in
  let g = Mos.elaborate wide in
  expect_invalid_arg "11 inputs" (fun () ->
      Mos.expected_energy_per_cycle g ~input_probs:(Array.make 11 0.5))

(* --- Reorder --- *)

let stack3 = Mos.Series [ Mos.Input 0; Mos.Input 1; Mos.Input 2 ]

let test_orderings_count () =
  Alcotest.(check int) "3! orderings" 6 (List.length (Reorder.orderings stack3));
  Alcotest.(check int) "parallel order collapses" 1
    (List.length (Reorder.orderings (Mos.Parallel [ Mos.Input 0; Mos.Input 1 ])))

let test_orderings_preserve_function () =
  List.iter
    (fun o ->
      Alcotest.(check bool) "same function" true
        (Truth_table.equal
           (Truth_table.of_expr 3 (Mos.output_expr stack3))
           (Truth_table.of_expr 3 (Mos.output_expr o))))
    (Reorder.orderings stack3)

let test_best_beats_or_ties_heuristic () =
  let input_probs = [| 0.9; 0.5; 0.1 |] in
  let _, best_p, _ = Reorder.best Reorder.Min_power stack3 ~input_probs () in
  let heur = Reorder.heuristic_power_order stack3 ~input_probs in
  let heur_p, _ = Reorder.evaluate heur ~input_probs () in
  Alcotest.(check bool) "exhaustive <= heuristic" true (best_p <= heur_p +. 1e-12)

let test_ordering_changes_power () =
  (* With skewed probabilities the ordering must matter. *)
  let input_probs = [| 0.95; 0.5; 0.05 |] in
  let powers =
    List.map
      (fun o -> fst (Reorder.evaluate o ~input_probs ()))
      (Reorder.orderings stack3)
  in
  Alcotest.(check bool) "spread exists" true
    (Lowpower.Stats.maximum powers -. Lowpower.Stats.minimum powers > 1e-6)

let test_delay_order_puts_late_near_output () =
  let arrival = function 0 -> 0.0 | 1 -> 5.0 | _ -> 1.0 in
  match Reorder.heuristic_delay_order stack3 ~arrival with
  | Mos.Series (Mos.Input first :: _) ->
    Alcotest.(check int) "latest first" 1 first
  | _ -> Alcotest.fail "unexpected shape"

let test_min_delay_objective () =
  let arrival = function 0 -> 3.0 | _ -> 0.0 in
  let best, _, d_best = Reorder.best Reorder.Min_delay stack3 ~input_probs:[| 0.5; 0.5; 0.5 |] ~arrival () in
  List.iter
    (fun o ->
      let _, d = Reorder.evaluate o ~input_probs:[| 0.5; 0.5; 0.5 |] ~arrival () in
      Alcotest.(check bool) "minimal" true (d_best <= d +. 1e-12))
    (Reorder.orderings stack3);
  ignore best

let test_orderings_blowup_guard () =
  let big = Mos.Series (List.init 9 (fun i -> Mos.Input i)) in
  expect_invalid_arg "too many orderings" (fun () -> Reorder.orderings big)

(* --- Sizing --- *)

let sizing_net () =
  (Circuits.ripple_adder 4).Circuits.net

let test_sizing_delay_model_monotone () =
  let net = sizing_net () in
  let dp = Sizing.default_delay_params in
  let big = Sizing.uniform net 4.0 in
  let small = Sizing.uniform net 1.0 in
  Alcotest.(check bool) "bigger is faster" true
    (Sizing.critical_delay dp net big < Sizing.critical_delay dp net small)

let test_sizing_power_monotone () =
  let net = sizing_net () in
  let dp = Sizing.default_delay_params in
  let act = Activity.zero_delay net ~input_probs:(Probability.uniform_inputs net) in
  let big = Sizing.uniform net 4.0 and small = Sizing.uniform net 1.0 in
  Alcotest.(check bool) "bigger burns more" true
    (Sizing.switched_capacitance dp net big ~activity:act
    > Sizing.switched_capacitance dp net small ~activity:act)

let test_sizing_respects_constraint () =
  let net = sizing_net () in
  let dp = Sizing.default_delay_params in
  let act = Activity.zero_delay net ~input_probs:(Probability.uniform_inputs net) in
  let start = Sizing.uniform net 4.0 in
  let d0 = Sizing.critical_delay dp net start in
  let required = d0 *. 1.3 in
  let sized = Sizing.size_for_power dp net ~required ~activity:act start in
  Alcotest.(check bool) "constraint met" true
    (Sizing.critical_delay dp net sized <= required +. 1e-6);
  Alcotest.(check bool) "power reduced" true
    (Sizing.switched_capacitance dp net sized ~activity:act
    < Sizing.switched_capacitance dp net start ~activity:act)

let test_sizing_slack_zero_means_no_change () =
  let net = sizing_net () in
  let dp = Sizing.default_delay_params in
  let act = Activity.zero_delay net ~input_probs:(Probability.uniform_inputs net) in
  let start = Sizing.uniform net 4.0 in
  let d0 = Sizing.critical_delay dp net start in
  (* Required = current delay: nothing may slow down the critical path, but
     off-path gates can still shrink; power must not increase. *)
  let sized = Sizing.size_for_power dp net ~required:d0 ~activity:act start in
  Alcotest.(check bool) "no worse" true
    (Sizing.switched_capacitance dp net sized ~activity:act
    <= Sizing.switched_capacitance dp net start ~activity:act +. 1e-9)

let test_sizing_infeasible_start () =
  let net = sizing_net () in
  let dp = Sizing.default_delay_params in
  let act = Activity.zero_delay net ~input_probs:(Probability.uniform_inputs net) in
  let start = Sizing.uniform net 1.0 in
  let d = Sizing.critical_delay dp net start in
  expect_invalid_arg "initially violated" (fun () ->
      Sizing.size_for_power dp net ~required:(d /. 2.0) ~activity:act start)

let suite =
  [
    quick "mos conduction and logic function" test_mos_conduction_and_function;
    quick "mos structure counts" test_mos_counts;
    quick "mos validation" test_mos_validation;
    quick "mos full swing dissipates" test_mos_energy_nonnegative_and_output_driven;
    quick "mos idle vector free" test_mos_no_change_no_energy;
    quick "mos expectation matches trace" test_mos_expected_energy_matches_trace;
    quick "mos input limit" test_mos_too_many_inputs;
    quick "orderings enumerated" test_orderings_count;
    quick "orderings preserve function" test_orderings_preserve_function;
    quick "exhaustive beats heuristic" test_best_beats_or_ties_heuristic;
    quick "ordering changes power" test_ordering_changes_power;
    quick "delay heuristic places late input at output" test_delay_order_puts_late_near_output;
    quick "min delay objective" test_min_delay_objective;
    quick "ordering explosion guarded" test_orderings_blowup_guard;
    quick "sizing delay monotone in size" test_sizing_delay_model_monotone;
    quick "sizing power monotone in size" test_sizing_power_monotone;
    quick "sizing meets delay constraint" test_sizing_respects_constraint;
    quick "sizing at zero budget never worse" test_sizing_slack_zero_means_no_change;
    quick "sizing infeasible start rejected" test_sizing_infeasible_start;
  ]
