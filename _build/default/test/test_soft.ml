(* Tests for lp_soft: Isa, Machine, Energy_model, Compile. *)

open Test_util

(* --- Isa / Machine --- *)

let test_machine_arithmetic () =
  let m = Machine.create ~width:8 () in
  Machine.poke m 0 200;
  Machine.poke m 1 100;
  let cycles =
    Machine.run m
      [
        Isa.Ld (0, 0);
        Isa.Ld (1, 1);
        Isa.Add (2, 0, 1);
        Isa.Sub (3, 0, 1);
        Isa.Mul (4, 0, 1);
        Isa.Shl (5, 1, 1);
        Isa.St (2, 2);
      ]
  in
  Alcotest.(check int) "add wraps" ((200 + 100) land 255) (Machine.reg m 2);
  Alcotest.(check int) "sub" 100 (Machine.reg m 3);
  Alcotest.(check int) "mul wraps" (200 * 100 land 255) (Machine.reg m 4);
  Alcotest.(check int) "shl" 200 (Machine.reg m 5);
  Alcotest.(check int) "stored" (Machine.reg m 2) (Machine.peek m 2);
  (* 2+2+1+1+2+1+2 = 11 *)
  Alcotest.(check int) "cycles" 11 cycles

let test_machine_mac () =
  let m = Machine.create () in
  let cycles =
    Machine.run m
      [ Isa.Li (0, 3); Isa.Li (1, 4); Isa.Clracc; Isa.Mac (0, 1);
        Isa.Mac (0, 1); Isa.Rdacc 2 ]
  in
  Alcotest.(check int) "acc" 24 (Machine.reg m 2);
  Alcotest.(check int) "cycles" 8 cycles

let test_pair_semantics_and_latency () =
  let m = Machine.create () in
  Machine.poke m 5 7;
  let seq = Machine.create () in
  Machine.poke seq 5 7;
  let body = [ Isa.Li (0, 3); Isa.Li (1, 4); Isa.Clracc ] in
  let paired = body @ [ Isa.Pair (Isa.Ld (2, 5), Isa.Mac (0, 1)) ] in
  let unpaired = body @ [ Isa.Ld (2, 5); Isa.Mac (0, 1) ] in
  let c_pair = Machine.run m paired in
  let c_seq = Machine.run seq unpaired in
  Alcotest.(check int) "same acc" (Machine.acc seq) (Machine.acc m);
  Alcotest.(check int) "same reg" (Machine.reg seq 2) (Machine.reg m 2);
  Alcotest.(check bool) "pair saves cycles" true (c_pair < c_seq)

let test_isa_validation () =
  expect_invalid_arg "bad register" (fun () -> Isa.validate [ Isa.Li (9, 0) ]);
  expect_invalid_arg "illegal pair" (fun () ->
      Isa.validate [ Isa.Pair (Isa.Ld (0, 0), Isa.Mac (0, 1)) ]);
  expect_invalid_arg "two alu ops cannot pair" (fun () ->
      Isa.validate [ Isa.Pair (Isa.Add (0, 1, 2), Isa.Add (3, 4, 5)) ])

let test_pairable_rules () =
  Alcotest.(check bool) "ld+mac distinct regs" true
    (Isa.pairable (Isa.Ld (3, 0)) (Isa.Mac (0, 1)));
  Alcotest.(check bool) "ld dest collides" false
    (Isa.pairable (Isa.Ld (0, 0)) (Isa.Mac (0, 1)));
  Alcotest.(check bool) "mac then ld" true
    (Isa.pairable (Isa.Mac (0, 1)) (Isa.Ld (3, 0)))

(* --- Energy model --- *)

let test_classification () =
  Alcotest.(check bool) "ld is mem" true
    (Energy_model.classify (Isa.Ld (0, 0)) = Energy_model.Cls_mem);
  Alcotest.(check bool) "pair takes heavier class" true
    (Energy_model.classify (Isa.Pair (Isa.Ld (2, 0), Isa.Mac (0, 1)))
    = Energy_model.Cls_mac)

let test_program_energy_overheads () =
  let p = Energy_model.dsp_cpu in
  let alternating =
    [ Isa.Ld (0, 0); Isa.Mac (0, 0); Isa.Ld (1, 1); Isa.Mac (1, 1) ]
  in
  let grouped = [ Isa.Ld (0, 0); Isa.Ld (1, 1); Isa.Mac (0, 0); Isa.Mac (1, 1) ] in
  Alcotest.(check bool) "alternation costs circuit-state overhead" true
    (Energy_model.program_energy p alternating
    > Energy_model.program_energy p grouped);
  (* Same bases, only overhead differs. *)
  let base_sum prog =
    List.fold_left (fun acc i -> acc +. Energy_model.instr_energy p i) 0.0 prog
  in
  check_close "same base energy" (base_sum alternating) (base_sum grouped)

let test_gp_insensitive_to_order () =
  let p = Energy_model.gp_cpu in
  let a = [ Isa.Ld (0, 0); Isa.Mul (1, 0, 0); Isa.Ld (2, 1); Isa.Mul (3, 2, 2) ] in
  let b = [ Isa.Ld (0, 0); Isa.Ld (2, 1); Isa.Mul (1, 0, 0); Isa.Mul (3, 2, 2) ] in
  let ea = Energy_model.program_energy p a in
  let eb = Energy_model.program_energy p b in
  Alcotest.(check bool) "under 3% difference on the big core" true
    (Float.abs (ea -. eb) /. eb < 0.03)

let test_pair_discount () =
  let p = Energy_model.dsp_cpu in
  let pair = Isa.Pair (Isa.Ld (2, 0), Isa.Mac (0, 1)) in
  check_close "pair = parts - discount"
    (Energy_model.instr_energy p (Isa.Ld (2, 0))
    +. Energy_model.instr_energy p (Isa.Mac (0, 1))
    -. 4.0)
    (Energy_model.instr_energy p pair)

(* --- Compile --- *)

let dot_product taps =
  let dfg = Dfg.create ~width:12 () in
  let xs = List.init taps (fun k -> Dfg.add dfg (Dfg.Input (Printf.sprintf "x%d" k)) []) in
  let ys = List.init taps (fun k -> Dfg.add dfg (Dfg.Input (Printf.sprintf "y%d" k)) []) in
  let prods = List.map2 (fun x y -> Dfg.add dfg Dfg.Mul [ x; y ]) xs ys in
  let sum =
    match prods with
    | p :: rest -> List.fold_left (fun acc q -> Dfg.add dfg Dfg.Add [ acc; q ]) p rest
    | [] -> assert false
  in
  ignore (Dfg.add dfg (Dfg.Output "dot") [ sum ]);
  dfg

let variants =
  [
    ("naive", Compile.naive);
    ("optimized", Compile.optimized ());
    ("gp-scheduled", Compile.optimized ~profile:Energy_model.gp_cpu ());
    ("dsp-full", Compile.optimized ~profile:Energy_model.dsp_cpu ());
    ( "dsp-4regs",
      { (Compile.optimized ~profile:Energy_model.dsp_cpu ()) with
        Compile.registers = 4 } );
    ("3regs", { (Compile.optimized ()) with Compile.registers = 3 });
  ]

let test_all_variants_correct () =
  let dfg = dot_product 6 in
  List.iter
    (fun (name, opts) ->
      let comp = Compile.compile opts dfg in
      Alcotest.(check bool) (name ^ " correct") true
        (Compile.verify comp dfg ~rng:(rng ()) ~samples:100))
    variants

let test_fir_compiles_correctly () =
  let dfg = Gen_dfg.fir ~taps:5 () in
  List.iter
    (fun (name, opts) ->
      let comp = Compile.compile opts dfg in
      Alcotest.(check bool) (name ^ " fir correct") true
        (Compile.verify comp dfg ~rng:(rng ()) ~samples:100))
    variants

let test_register_budget_validation () =
  let dfg = dot_product 3 in
  expect_invalid_arg "2 registers" (fun () ->
      ignore
        (Compile.compile { (Compile.optimized ()) with Compile.registers = 2 } dfg))

let run_energy opts profile dfg =
  let comp = Compile.compile opts dfg in
  let inputs =
    List.mapi (fun k (nm, _) -> (nm, (k * 93) + 7)) (Dfg.inputs dfg)
  in
  Compile.measure comp profile ~width:12 inputs

let test_optimized_faster_and_cheaper () =
  (* §V: "faster code almost always implies lower energy code". *)
  let dfg = dot_product 6 in
  let e_naive, c_naive = run_energy Compile.naive Energy_model.gp_cpu dfg in
  let e_opt, c_opt = run_energy (Compile.optimized ()) Energy_model.gp_cpu dfg in
  Alcotest.(check bool) "fewer cycles" true (c_opt < c_naive);
  Alcotest.(check bool) "less energy" true (e_opt < e_naive)

let test_register_operands_cheaper () =
  (* §V: register operands are much cheaper than memory operands. *)
  let dfg = dot_product 6 in
  let e8, _ = run_energy (Compile.optimized ()) Energy_model.gp_cpu dfg in
  let e3, _ =
    run_energy { (Compile.optimized ()) with Compile.registers = 3 }
      Energy_model.gp_cpu dfg
  in
  Alcotest.(check bool) "spilling costs energy" true (e3 > e8)

let test_dsp_scheduling_matters_gp_does_not () =
  let dfg = dot_product 8 in
  let with_profile p =
    let base, _ = run_energy (Compile.optimized ()) p dfg in
    let sched, _ =
      run_energy
        { (Compile.optimized ~profile:p ()) with Compile.pair = false }
        p dfg
    in
    (base -. sched) /. base
  in
  let gp_gain = with_profile Energy_model.gp_cpu in
  let dsp_gain = with_profile Energy_model.dsp_cpu in
  Alcotest.(check bool)
    (Printf.sprintf "dsp gain (%.3f) exceeds gp gain (%.3f)" dsp_gain gp_gain)
    true
    (dsp_gain >= gp_gain -. 1e-9);
  Alcotest.(check bool) "gp gain is small (<3%)" true (gp_gain < 0.03)

let test_pairing_saves_on_dsp () =
  let dfg = dot_product 8 in
  let opts_nopair =
    { (Compile.optimized ~profile:Energy_model.dsp_cpu ()) with
      Compile.registers = 4; pair = false }
  in
  let opts_pair = { opts_nopair with Compile.pair = true } in
  let e_nopair, c_nopair = run_energy opts_nopair Energy_model.dsp_cpu dfg in
  let e_pair, c_pair = run_energy opts_pair Energy_model.dsp_cpu dfg in
  Alcotest.(check bool) "pairing reduces cycles" true (c_pair < c_nopair);
  Alcotest.(check bool) "pairing reduces energy" true (e_pair < e_nopair);
  (* And it must still be correct. *)
  let comp = Compile.compile opts_pair dfg in
  Alcotest.(check bool) "paired code correct" true
    (Compile.verify comp dfg ~rng:(rng ()) ~samples:100)

let test_mac_selection_used () =
  let dfg = dot_product 4 in
  let comp = Compile.compile (Compile.optimized ()) dfg in
  let has_mac =
    List.exists
      (fun i -> match i with Isa.Mac _ | Isa.Pair _ -> true | _ -> false)
      comp.Compile.program
  in
  Alcotest.(check bool) "mac selected" true has_mac

let test_strength_reduction_in_codegen () =
  (* Constant multiplies are strength-reduced at the DFG level
     (Transform.strength_reduce); the backend then emits Shl for the
     resulting Shift_left nodes instead of multiplier activations. *)
  let dfg = Gen_dfg.const_mul_chain ~terms:4 in
  let reduced = Transform.strength_reduce dfg in
  let with_sr = Compile.compile (Compile.optimized ()) reduced in
  let without_sr = Compile.compile (Compile.optimized ()) dfg in
  let mul_activations prog =
    List.length
      (List.filter
         (function
           | Isa.Mul _ | Isa.Mac _ | Isa.Pair _ -> true
           | _ -> false)
         prog)
  in
  let shifts prog =
    List.length (List.filter (function Isa.Shl _ -> true | _ -> false) prog)
  in
  Alcotest.(check bool) "fewer multiplier activations" true
    (mul_activations with_sr.Compile.program
    < mul_activations without_sr.Compile.program);
  Alcotest.(check bool) "shifts appear" true (shifts with_sr.Compile.program > 0);
  Alcotest.(check bool) "still correct" true
    (Compile.verify with_sr reduced ~rng:(rng ()) ~samples:100);
  (* The reduced program is cheaper on both CPU profiles. *)
  let inputs = List.mapi (fun k (nm, _) -> (nm, (k * 19) + 3)) (Dfg.inputs dfg) in
  let e_sr, _ = Compile.measure with_sr Energy_model.dsp_cpu inputs in
  let e_mul, _ = Compile.measure without_sr Energy_model.dsp_cpu inputs in
  Alcotest.(check bool) "shift kernel cheaper" true (e_sr < e_mul)

(* --- Streaming kernels --- *)

let fir_case ~taps ~samples seed =
  let r = rng () in
  ignore seed;
  let coeffs = List.init taps (fun k -> (2 * k) + 1) in
  let xs =
    List.init (samples + taps - 1) (fun _ -> Lowpower.Rng.int r 4096)
  in
  let expect = Kernels.reference_fir ~taps ~samples ~coeffs ~xs ~width:16 in
  (coeffs, xs, expect)

let run_kernel program layout ~coeffs ~xs ~samples =
  let m = Machine.create ~width:16 () in
  Kernels.load_fir_inputs m layout ~coeffs ~xs;
  let cycles = Machine.run m program in
  (Kernels.read_fir_outputs m layout ~samples, cycles, m)

let test_streaming_fir_correct () =
  List.iter
    (fun (taps, samples) ->
      let coeffs, xs, expect = fir_case ~taps ~samples 1 in
      let program, layout = Kernels.streaming_fir ~taps ~samples () in
      let got, _, _ = run_kernel program layout ~coeffs ~xs ~samples in
      Alcotest.(check (list int))
        (Printf.sprintf "fir %dx%d" taps samples)
        expect got)
    [ (1, 1); (3, 5); (4, 16); (6, 10) ]

let test_unrolled_fir_correct () =
  let taps = 4 and samples = 12 in
  let coeffs, xs, expect = fir_case ~taps ~samples 2 in
  let program, layout = Kernels.unrolled_fir ~taps ~samples in
  let got, _, _ = run_kernel program layout ~coeffs ~xs ~samples in
  Alcotest.(check (list int)) "unrolled" expect got

let test_paired_streaming_fir_correct_and_faster () =
  let taps = 4 and samples = 20 in
  let coeffs, xs, expect = fir_case ~taps ~samples 3 in
  let plain, layout = Kernels.streaming_fir ~taps ~samples () in
  let paired, layout' = Kernels.streaming_fir ~taps ~samples ~pair:true () in
  let got_p, cyc_p, mp = run_kernel plain layout ~coeffs ~xs ~samples in
  let got_q, cyc_q, mq = run_kernel paired layout' ~coeffs ~xs ~samples in
  Alcotest.(check (list int)) "plain loop" expect got_p;
  Alcotest.(check (list int)) "paired loop" expect got_q;
  Alcotest.(check bool) "pairing cuts cycles" true (cyc_q < cyc_p);
  let e m = Energy_model.program_energy Energy_model.dsp_cpu (Machine.executed m) in
  Alcotest.(check bool) "pairing cuts DSP energy" true (e mq < e mp)

let test_loop_vs_unrolled_tradeoff () =
  (* The loop form is smaller but pays branch/pointer overhead per sample;
     unrolled is larger but cheaper per sample. *)
  let taps = 4 and samples = 32 in
  let coeffs, xs, _ = fir_case ~taps ~samples 4 in
  let looped, l1 = Kernels.streaming_fir ~taps ~samples () in
  let unrolled, l2 = Kernels.unrolled_fir ~taps ~samples in
  Alcotest.(check bool) "loop code smaller" true
    (List.length looped < List.length unrolled / 4);
  let _, cyc_loop, _ = run_kernel looped l1 ~coeffs ~xs ~samples in
  let _, cyc_unrolled, _ = run_kernel unrolled l2 ~coeffs ~xs ~samples in
  Alcotest.(check bool) "unrolled faster per sample" true
    (cyc_unrolled < cyc_loop)

let test_runaway_loop_guard () =
  (* bnz to itself with a register that never clears. *)
  let program = [ Isa.Li (0, 1); Isa.Bnz (0, 1) ] in
  let m = Machine.create () in
  expect_invalid_arg "fuel" (fun () -> Machine.run m program)

let test_branch_validation () =
  expect_invalid_arg "target out of range" (fun () ->
      Isa.validate [ Isa.Bnz (0, 5) ])

let suite =
  [
    quick "machine arithmetic and latency" test_machine_arithmetic;
    quick "machine mac" test_machine_mac;
    quick "pair semantics and latency" test_pair_semantics_and_latency;
    quick "isa validation" test_isa_validation;
    quick "pairable rules" test_pairable_rules;
    quick "instruction classification" test_classification;
    quick "circuit-state overhead measurable" test_program_energy_overheads;
    quick "gp core order-insensitive" test_gp_insensitive_to_order;
    quick "pair discount" test_pair_discount;
    quick "all compiler variants correct (dot)" test_all_variants_correct;
    quick "all compiler variants correct (fir)" test_fir_compiles_correctly;
    quick "register budget validated" test_register_budget_validation;
    quick "faster code is lower energy (paper V)" test_optimized_faster_and_cheaper;
    quick "register operands cheaper than memory" test_register_operands_cheaper;
    quick "scheduling matters on DSP not GP (paper V)" test_dsp_scheduling_matters_gp_does_not;
    quick "pairing saves on DSP (paper V)" test_pairing_saves_on_dsp;
    quick "mac selection used" test_mac_selection_used;
    quick "strength reduction in codegen" test_strength_reduction_in_codegen;
    quick "streaming fir correct" test_streaming_fir_correct;
    quick "unrolled fir correct" test_unrolled_fir_correct;
    quick "paired streaming fir" test_paired_streaming_fir_correct_and_faster;
    quick "loop vs unrolled tradeoff" test_loop_vs_unrolled_tradeoff;
    quick "runaway loop guard" test_runaway_loop_guard;
    quick "branch validation" test_branch_validation;
  ]
