(* Shared helpers for the test suites. *)

let rng () = Lowpower.Rng.create 20260705

let check_close ?(eps = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let check_close_rel ?(eps = 0.05) name expected actual =
  let denom = max (Float.abs expected) 1e-12 in
  if Float.abs (expected -. actual) /. denom > eps then
    Alcotest.failf "%s: expected ~%.6g (within %g%%), got %.6g" name expected
      (100.0 *. eps) actual

let expect_invalid_arg name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let quick name f = Alcotest.test_case name `Quick f

let prop ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen law)

(* Exhaustive or sampled input-vector space of a network. *)
let eval_minterm net code =
  let n = List.length (Network.inputs net) in
  let vec = Array.init n (fun k -> code land (1 lsl k) <> 0) in
  Network.eval_outputs net vec

let networks_equivalent a b =
  let na = List.length (Network.inputs a) in
  let nb = List.length (Network.inputs b) in
  na = nb && na <= 16
  &&
  let rec go code =
    if code >= 1 lsl na then true
    else if
      List.sort compare (eval_minterm a code)
      = List.sort compare (eval_minterm b code)
    then go (code + 1)
    else false
  in
  go 0
