test/test_synth.ml: Activity Alcotest Array Balance Circuits Cleanup Dontcare Event_sim Expr Factor Gen_comb List Mapper Network Probability QCheck2 Stimulus Subject Techlib Test_util Truth_table
