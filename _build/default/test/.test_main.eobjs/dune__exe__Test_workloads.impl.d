test/test_workloads.ml: Alcotest Array Balance Bus Dfg Factor Gen_comb Gen_dfg Gen_fsm Hashtbl List Lowpower Network Printf Stg Test_util Traces
