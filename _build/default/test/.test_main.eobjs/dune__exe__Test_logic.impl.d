test/test_logic.ml: Alcotest Array Bdd Cover Cube Expr Float List Option QCheck2 Test_util Truth_table
