test/test_seq_estimate.ml: Alcotest Clock_gate Encode Fsm_synth Gen_fsm Hashtbl List Markov Seq_circuit Seq_estimate Stimulus Test_util
