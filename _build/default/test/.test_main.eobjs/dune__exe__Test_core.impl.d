test/test_core.ml: Alcotest Array Format List Lowpower Option String Test_util
