test/test_coding.ml: Alcotest Bus Bus_invert Limited_weight List Lowpower Printf QCheck2 Residue Test_util Traces
