test/test_sim.ml: Alcotest Array Circuits Event_sim Hashtbl List Lowpower Network Option Stimulus Test_util
