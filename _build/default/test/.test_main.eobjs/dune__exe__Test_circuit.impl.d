test/test_circuit.ml: Activity Alcotest Array Circuits Expr List Lowpower Mos Probability Reorder Sizing Test_util Truth_table
