test/test_network.ml: Alcotest Array Bdd Circuits Event_sim Expr Hashtbl List Lowpower Network Printf Stimulus Test_util
