test/test_guard.ml: Alcotest Array Circuits Expr Guard List Lowpower Network Printf Stimulus Test_util
