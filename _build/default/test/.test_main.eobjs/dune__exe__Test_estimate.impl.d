test/test_estimate.ml: Activity Alcotest Circuits Event_sim Expr Hashtbl List Lowpower Network Probability Stimulus Test_util
