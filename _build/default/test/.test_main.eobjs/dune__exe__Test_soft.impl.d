test/test_soft.ml: Alcotest Compile Dfg Energy_model Float Gen_dfg Isa Kernels List Lowpower Machine Printf Test_util Transform
