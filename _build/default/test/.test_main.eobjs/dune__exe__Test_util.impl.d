test/test_util.ml: Alcotest Array Float List Lowpower Network QCheck2 QCheck_alcotest
