(* Tests for Seq_estimate: sequential power estimation ([28]). *)

open Test_util

let counter_circuit enable_prob =
  let stg = Gen_fsm.counter ~bits:3 in
  let synth = Fsm_synth.synthesize stg (Encode.binary ~num_states:8) in
  (stg, synth, Markov.biased_inputs stg ~bit_probs:[| enable_prob |])

let test_state_probs_uniform_on_counter () =
  (* A free-running counter visits all states equally often. *)
  let _, synth, _ = counter_circuit 0.5 in
  let est =
    Seq_estimate.steady_state synth.Fsm_synth.circuit
      ~input_bit_probs:[| 1.0 |]
  in
  Hashtbl.iter
    (fun _ p -> check_close ~eps:1e-6 "uniform" 0.125 p)
    est.Seq_estimate.state_probs;
  (* Always counting: ff toggles = 1 + 1/2 + ... = 2 - 2^-2 per cycle. *)
  check_close ~eps:1e-6 "counter toggle rate" (2.0 -. 0.25)
    est.Seq_estimate.ff_toggle_rate

let test_estimate_matches_simulation () =
  let stg, synth, dist = counter_circuit 0.3 in
  let est =
    Seq_estimate.steady_state synth.Fsm_synth.circuit
      ~input_bit_probs:[| 0.3 |]
  in
  let cycles = 30_000 in
  let stats =
    Fsm_synth.simulate_inputs synth stg ~rng:(rng ()) ~dist ~cycles
  in
  check_close_rel ~eps:0.05 "ff toggles: analysis vs simulation"
    est.Seq_estimate.ff_toggle_rate
    (float_of_int stats.Seq_circuit.ff_output_toggles /. float_of_int cycles)

let test_estimate_matches_event_sim_swcap () =
  (* Per-node functional switching measured by the cycle simulator should
     match the chain analysis. *)
  let stg, synth, _dist = counter_circuit 0.5 in
  ignore stg;
  let est =
    Seq_estimate.steady_state synth.Fsm_synth.circuit
      ~input_bit_probs:[| 0.5 |]
  in
  let seq_est =
    Seq_estimate.of_sequence synth.Fsm_synth.circuit
      (Stimulus.random (rng ()) ~width:1 ~length:30_000 ())
  in
  check_close_rel ~eps:0.05 "switched capacitance: chain vs sequence"
    est.Seq_estimate.switched_capacitance
    seq_est.Seq_estimate.switched_capacitance

let test_white_noise_assumption_errs () =
  (* With a rarely-enabled counter the state lines are strongly biased;
     treating them as p = 0.5 white noise misestimates power — the error
     [28] fixes. *)
  let _, synth, _ = counter_circuit 0.1 in
  let est =
    Seq_estimate.steady_state synth.Fsm_synth.circuit
      ~input_bit_probs:[| 0.1 |]
  in
  Alcotest.(check bool) "white-noise model off by > 25%" true
    (Seq_estimate.white_noise_error est synth.Fsm_synth.circuit > 0.25)

let test_sequence_variant_visits () =
  let _, synth, _ = counter_circuit 0.5 in
  (* Drive with the all-ones enable: the counter cycles deterministically. *)
  let stim = List.init 800 (fun _ -> [| true |]) in
  let est = Seq_estimate.of_sequence synth.Fsm_synth.circuit stim in
  Hashtbl.iter
    (fun _ p -> check_close_rel ~eps:0.02 "visit frequency" 0.125 p)
    est.Seq_estimate.state_probs;
  check_close_rel ~eps:0.02 "toggle rate" 1.75 est.Seq_estimate.ff_toggle_rate

let test_validation () =
  let _, synth, _ = counter_circuit 0.5 in
  expect_invalid_arg "arity" (fun () ->
      ignore
        (Seq_estimate.steady_state synth.Fsm_synth.circuit
           ~input_bit_probs:[| 0.5; 0.5 |]));
  expect_invalid_arg "empty sequence" (fun () ->
      ignore (Seq_estimate.of_sequence synth.Fsm_synth.circuit []))

let test_gated_circuit_analysis () =
  (* The estimator understands load-enables: a gated counter at low duty
     has a much lower toggle rate. *)
  let stg = Gen_fsm.counter ~bits:3 in
  let synth = Fsm_synth.synthesize stg (Encode.binary ~num_states:8) in
  let gated = Clock_gate.gate_fsm synth stg in
  let est =
    Seq_estimate.steady_state gated.Fsm_synth.circuit
      ~input_bit_probs:[| 0.1 |]
  in
  Alcotest.(check bool) "low toggle rate at 10% duty" true
    (est.Seq_estimate.ff_toggle_rate < 0.3)

let suite =
  [
    quick "counter steady state uniform" test_state_probs_uniform_on_counter;
    quick "analysis matches simulation" test_estimate_matches_simulation;
    quick "chain vs sequence switched capacitance" test_estimate_matches_event_sim_swcap;
    quick "white-noise assumption errs (paper [28])" test_white_noise_assumption_errs;
    quick "sequence variant visit frequencies" test_sequence_variant_visits;
    quick "estimator validation" test_validation;
    quick "gated circuits analyzed correctly" test_gated_circuit_analysis;
  ]
