(* Tests for lp_estimate: Probability and Activity. *)

open Test_util

let and_net () =
  let net = Network.create () in
  let a = Network.add_input net and b = Network.add_input net in
  let g = Network.add_node net Expr.(var 0 &&& var 1) [ a; b ] in
  Network.set_output net "z" g;
  (net, g)

let reconvergent_net () =
  (* z = (a & b) | (a & ~b): reconvergent fanout on a; exactly z = a. *)
  let net = Network.create () in
  let a = Network.add_input net and b = Network.add_input net in
  let nb = Network.add_node net (Expr.not_ (Expr.var 0)) [ b ] in
  let g1 = Network.add_node net Expr.(var 0 &&& var 1) [ a; b ] in
  let g2 = Network.add_node net Expr.(var 0 &&& var 1) [ a; nb ] in
  let z = Network.add_node net Expr.(var 0 ||| var 1) [ g1; g2 ] in
  Network.set_output net "z" z;
  (net, z)

let test_exact_and_gate () =
  let net, g = and_net () in
  let probs = Probability.exact net ~input_probs:[| 0.5; 0.5 |] in
  check_close "p(and) = 1/4" 0.25 (Hashtbl.find probs g);
  let probs = Probability.exact net ~input_probs:[| 0.3; 0.7 |] in
  check_close "p = 0.21" 0.21 (Hashtbl.find probs g)

let test_exact_handles_reconvergence () =
  let net, z = reconvergent_net () in
  let probs = Probability.exact net ~input_probs:[| 0.3; 0.5 |] in
  (* z = a exactly. *)
  check_close "exact sees z = a" 0.3 (Hashtbl.find probs z)

let test_approx_errs_on_reconvergence () =
  let net, z = reconvergent_net () in
  let probs = Probability.approximate net ~input_probs:[| 0.3; 0.5 |] in
  (* Independence assumption: p = p1 + p2 - p1 p2 with p1 = p2 = 0.15. *)
  check_close "approximate overcounts" (0.15 +. 0.15 -. (0.15 *. 0.15))
    (Hashtbl.find probs z)

let test_approx_equals_exact_on_trees () =
  (* Fanout-free networks: independence is exact. *)
  let dp = Circuits.ripple_adder 4 in
  ignore dp;
  let net = Network.create () in
  let a = Network.add_input net and b = Network.add_input net in
  let c = Network.add_input net and d = Network.add_input net in
  let g1 = Network.add_node net Expr.(var 0 &&& var 1) [ a; b ] in
  let g2 = Network.add_node net Expr.(var 0 ||| var 1) [ c; d ] in
  let g3 = Network.add_node net Expr.(Xor (var 0, var 1)) [ g1; g2 ] in
  Network.set_output net "z" g3;
  let input_probs = [| 0.2; 0.4; 0.6; 0.8 |] in
  let e = Probability.exact net ~input_probs in
  let a' = Probability.approximate net ~input_probs in
  Hashtbl.iter
    (fun i p -> check_close "tree agreement" p (Hashtbl.find a' i))
    e

let test_simulated_matches_exact () =
  let net = (Circuits.comparator 4).Circuits.net in
  let input_probs = Probability.uniform_inputs net in
  let e = Probability.exact net ~input_probs in
  let s =
    Probability.simulated net ~rng:(rng ()) ~input_probs ~vectors:20_000
  in
  Hashtbl.iter
    (fun i p ->
      check_close_rel ~eps:0.12 "monte carlo agrees"
        (max p 0.02) (max (Hashtbl.find s i) 0.02))
    e

let test_probability_validation () =
  let net, _ = and_net () in
  expect_invalid_arg "arity" (fun () ->
      Probability.exact net ~input_probs:[| 0.5 |]);
  expect_invalid_arg "range" (fun () ->
      Probability.exact net ~input_probs:[| 0.5; 1.5 |])

let test_activity_formula () =
  check_close "p=0.5 max activity" 0.5 (Activity.of_probability 0.5);
  check_close "p=0 no activity" 0.0 (Activity.of_probability 0.0);
  check_close "p=0.1" 0.18 (Activity.of_probability 0.1)

let test_zero_delay_activity () =
  let net, g = and_net () in
  let act = Activity.zero_delay net ~input_probs:[| 0.5; 0.5 |] in
  check_close "and activity 2*(1/4)*(3/4)" 0.375 (Hashtbl.find act g)

let test_zero_delay_matches_simulation () =
  (* Temporal-independence zero-delay activity = measured functional
     transitions on white-noise stimulus. *)
  let net = (Circuits.ripple_adder 4).Circuits.net in
  let input_probs = Probability.uniform_inputs net in
  let act = Activity.zero_delay net ~input_probs in
  let stim = Stimulus.random (rng ()) ~width:8 ~length:20_000 () in
  let sim = Event_sim.run net Event_sim.Zero_delay stim in
  Hashtbl.iter
    (fun i a ->
      if not (Network.is_input net i) then
        check_close_rel ~eps:0.1 "activity vs simulation" (max a 0.05)
          (max (Event_sim.node_activity sim i) 0.05))
    act

let test_transition_density_xor () =
  (* Density of an n-input xor = sum of input densities (sensitivity 1). *)
  let net, ins = Circuits.parity_tree 3 in
  ignore ins;
  let dens =
    Activity.transition_density net
      ~input_probs:[| 0.5; 0.5; 0.5 |]
      ~input_densities:[| 0.2; 0.3; 0.4 |]
  in
  let out = List.assoc "parity" (Network.outputs net) in
  check_close "xor density adds" 0.9 (Hashtbl.find dens out)

let test_transition_density_and () =
  let net, g = and_net () in
  let dens =
    Activity.transition_density net ~input_probs:[| 0.5; 0.5 |]
      ~input_densities:[| 1.0; 1.0 |]
  in
  (* D = P(b) D(a) + P(a) D(b) = 0.5 + 0.5 = 1.0 *)
  check_close "and density" 1.0 (Hashtbl.find dens g)

let test_switched_capacitance_weighting () =
  let net, g = and_net () in
  Network.set_cap net g 3.0;
  let act = Activity.zero_delay net ~input_probs:[| 0.5; 0.5 |] in
  (* inputs: cap 1 activity 0.5 each; gate: cap 3 activity 0.375 *)
  check_close "weighted sum" ((2.0 *. 0.5) +. (3.0 *. 0.375))
    (Activity.switched_capacitance net act)

let test_network_power_bridge () =
  let net, _ = and_net () in
  let act = Activity.zero_delay net ~input_probs:[| 0.5; 0.5 |] in
  let b =
    Activity.network_power Lowpower.Power_model.default_params net act
  in
  Alcotest.(check bool) "positive power" true
    (Lowpower.Power_model.total b > 0.0)

let suite =
  [
    quick "exact probability of AND" test_exact_and_gate;
    quick "exact handles reconvergence" test_exact_handles_reconvergence;
    quick "approximate errs on reconvergence" test_approx_errs_on_reconvergence;
    quick "approximate exact on trees" test_approx_equals_exact_on_trees;
    quick "monte carlo matches exact" test_simulated_matches_exact;
    quick "probability input validation" test_probability_validation;
    quick "activity formula 2p(1-p)" test_activity_formula;
    quick "zero-delay activity" test_zero_delay_activity;
    quick "zero-delay activity matches simulation" test_zero_delay_matches_simulation;
    quick "transition density of xor" test_transition_density_xor;
    quick "transition density of and" test_transition_density_and;
    quick "switched capacitance weighting" test_switched_capacitance_weighting;
    quick "eqn1 bridge" test_network_power_bridge;
  ]
