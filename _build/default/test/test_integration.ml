(* Cross-module property tests: random instances pushed through whole
   flows, checked against independent oracles. *)

open Test_util

(* Random small networks as a qcheck generator (seed-driven so shrinking
   stays meaningful). *)
let gen_network =
  QCheck2.Gen.(
    map2
      (fun seed gates ->
        ( seed,
          gates,
          Gen_comb.random
            (Lowpower.Rng.create seed)
            {
              Gen_comb.num_inputs = 6;
              num_gates = 8 + gates;
              max_fanin = 3;
              output_fraction = 0.2;
            } ))
      (int_bound 10_000) (int_bound 20))

let prop_decompose_equivalent =
  prop ~count:40 "subject decomposition preserves every random network"
    gen_network
    (fun (_, _, net) -> networks_equivalent net (Subject.decompose net))

let prop_power_decompose_equivalent =
  prop ~count:40 "power decomposition preserves every random network"
    gen_network
    (fun (seed, _, net) ->
      let r = Lowpower.Rng.create (seed + 1) in
      let input_probs =
        Array.init (List.length (Network.inputs net)) (fun _ ->
            0.05 +. Lowpower.Rng.float r 0.9)
      in
      networks_equivalent net (Subject.decompose_for_power net ~input_probs))

let prop_mapping_equivalent =
  prop ~count:25 "area mapping preserves every random network" gen_network
    (fun (_, _, net) ->
      let subj = Subject.decompose net in
      networks_equivalent net (Mapper.netlist (Mapper.map subj Mapper.Area)))

let prop_balance_equivalent =
  prop ~count:40 "path balancing preserves every random network" gen_network
    (fun (_, _, net) ->
      let balanced, _ = Balance.balance net in
      networks_equivalent net balanced)

let prop_exact_matches_tt_probability =
  prop ~count:30 "exact signal probability equals minterm counting"
    gen_network
    (fun (_, _, net) ->
      let input_probs = Probability.uniform_inputs net in
      let probs = Probability.exact net ~input_probs in
      let n = List.length (Network.inputs net) in
      List.for_all
        (fun (_, o) ->
          let count = ref 0 in
          for code = 0 to (1 lsl n) - 1 do
            let vec = Array.init n (fun k -> code land (1 lsl k) <> 0) in
            let values = Network.eval net vec in
            if Hashtbl.find values o then incr count
          done;
          Float.abs
            (Hashtbl.find probs o
            -. (float_of_int !count /. float_of_int (1 lsl n)))
          < 1e-9)
        (Network.outputs net))

(* Random DFGs through the compiler. *)
let gen_dfg =
  QCheck2.Gen.(
    map
      (fun seed ->
        (seed, Gen_dfg.ewf_like (Lowpower.Rng.create seed) ~ops:12))
      (int_bound 10_000))

let prop_compiler_correct_on_random_dfgs =
  prop ~count:30 "every compiler variant is correct on random DFGs" gen_dfg
    (fun (seed, dfg) ->
      let r = Lowpower.Rng.create (seed + 7) in
      List.for_all
        (fun opts -> Compile.verify (Compile.compile opts dfg) dfg ~rng:r ~samples:30)
        [
          Compile.naive;
          Compile.optimized ();
          Compile.optimized ~profile:Energy_model.dsp_cpu ();
          { (Compile.optimized ~profile:Energy_model.dsp_cpu ()) with
            Compile.registers = 4 };
        ])

let prop_transforms_preserve_random_dfgs =
  prop ~count:40 "tree-height + strength reduction preserve random DFGs"
    gen_dfg
    (fun (seed, dfg) ->
      let r = Lowpower.Rng.create (seed + 13) in
      let t = Transform.strength_reduce (Transform.tree_height_reduce dfg) in
      Transform.equivalent dfg t ~rng:r ~samples:50)

(* Random FSMs through synthesis. *)
let gen_fsm =
  QCheck2.Gen.(
    map2
      (fun seed states ->
        ( seed,
          Gen_fsm.random
            (Lowpower.Rng.create seed)
            ~num_states:(3 + states) ~num_inputs:2 ~num_outputs:2 () ))
      (int_bound 10_000) (int_bound 6))

let prop_fsm_synthesis_correct =
  prop ~count:20 "synthesized random FSMs implement their STGs" gen_fsm
    (fun (seed, stg) ->
      let n = Stg.num_states stg in
      let enc = Encode.low_power ~restarts:1 stg (Markov.uniform_inputs stg) in
      let synth = Fsm_synth.synthesize stg enc in
      Fsm_synth.verify synth stg
        ~rng:(Lowpower.Rng.create (seed + 3))
        ~cycles:150
      &&
      let gated = Clock_gate.gate_fsm synth stg in
      ignore n;
      Fsm_synth.verify gated stg
        ~rng:(Lowpower.Rng.create (seed + 4))
        ~cycles:150)

(* Random schedules and bindings stay legal. *)
let prop_schedule_bindings_legal =
  prop ~count:30 "list schedule + bindings legal on random DFGs" gen_dfg
    (fun (seed, dfg) ->
      let d = Schedule.uniform_delays dfg in
      let res = function
        | Modlib.Multiplier_unit -> 2
        | Modlib.Adder_unit -> 2
        | Modlib.Shifter_unit -> 1
      in
      let sched = Schedule.list_schedule dfg d ~resources:res in
      let samples =
        Gen_dfg.random_samples (Lowpower.Rng.create (seed + 5)) dfg ~n:10 ()
      in
      let traces = Dfg.operand_trace dfg samples in
      let fu = Allocate.power_aware dfg d sched ~traces ~max_instances:res in
      let rb = Reg_bind.power_aware dfg d sched ~samples ~max_registers:64 in
      Schedule.valid dfg d sched
      && Allocate.valid dfg d sched fu
      && Reg_bind.valid dfg d sched rb)

let suite =
  [
    prop_decompose_equivalent;
    prop_power_decompose_equivalent;
    prop_mapping_equivalent;
    prop_balance_equivalent;
    prop_exact_matches_tt_probability;
    prop_compiler_correct_on_random_dfgs;
    prop_transforms_preserve_random_dfgs;
    prop_fsm_synthesis_correct;
    prop_schedule_bindings_legal;
  ]
