(* Tests for the core library: Rng, Power_model, Stats, Table. *)

open Test_util

let module_rng = Lowpower.Rng.create 42

let test_rng_determinism () =
  let a = Lowpower.Rng.create 7 and b = Lowpower.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Lowpower.Rng.bits64 a)
      (Lowpower.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Lowpower.Rng.create 1 and b = Lowpower.Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Lowpower.Rng.bits64 a <> Lowpower.Rng.bits64 b)

let test_rng_copy () =
  let a = Lowpower.Rng.create 5 in
  ignore (Lowpower.Rng.bits64 a);
  let b = Lowpower.Rng.copy a in
  Alcotest.(check int64) "copy tracks" (Lowpower.Rng.bits64 a)
    (Lowpower.Rng.bits64 b)

let test_rng_split_independent () =
  let a = Lowpower.Rng.create 5 in
  let c = Lowpower.Rng.split a in
  let x = Lowpower.Rng.bits64 a and y = Lowpower.Rng.bits64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_rng_int_bounds () =
  for _ = 1 to 1000 do
    let v = Lowpower.Rng.int module_rng 13 in
    if v < 0 || v >= 13 then Alcotest.fail "Rng.int out of bounds"
  done;
  expect_invalid_arg "zero bound" (fun () -> Lowpower.Rng.int module_rng 0)

let test_rng_float_bounds () =
  for _ = 1 to 1000 do
    let v = Lowpower.Rng.float module_rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_bernoulli_mean () =
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Lowpower.Rng.bernoulli module_rng 0.3 then incr hits
  done;
  check_close_rel ~eps:0.06 "bernoulli mean" 0.3
    (float_of_int !hits /. float_of_int n)

let test_rng_shuffle_permutes () =
  let arr = Array.init 20 (fun i -> i) in
  Lowpower.Rng.shuffle module_rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

let test_rng_gaussian_moments () =
  let n = 20_000 in
  let samples =
    List.init n (fun _ ->
        Lowpower.Rng.gaussian module_rng ~mean:3.0 ~stddev:2.0)
  in
  check_close_rel ~eps:0.05 "gaussian mean" 3.0 (Lowpower.Stats.mean samples);
  check_close_rel ~eps:0.05 "gaussian stddev" 2.0 (Lowpower.Stats.stddev samples)

let test_rng_pick () =
  expect_invalid_arg "empty pick" (fun () -> Lowpower.Rng.pick module_rng [||]);
  let v = Lowpower.Rng.pick module_rng [| 9 |] in
  Alcotest.(check int) "singleton pick" 9 v

(* --- Power model --- *)

let test_power_terms () =
  let p = { Lowpower.Power_model.vdd = 2.0; freq = 1.0e6; qsc = 1.0e-15;
            i_leak = 1.0e-6 } in
  let b = Lowpower.Power_model.power p ~capacitance:1.0e-12 ~activity:0.5 in
  (* 0.5 * 1p * 4 * 1e6 * 0.5 = 1e-6 W *)
  check_close "switching" 1.0e-6 b.Lowpower.Power_model.switching;
  (* 1e-15 * 2 * 1e6 * 0.5 = 1e-9 *)
  check_close "short circuit" 1.0e-9 b.Lowpower.Power_model.short_circuit;
  check_close "leakage" 2.0e-6 b.Lowpower.Power_model.leakage

let test_power_total_and_fraction () =
  let b = { Lowpower.Power_model.switching = 9.0; short_circuit = 0.5;
            leakage = 0.5 } in
  check_close "total" 10.0 (Lowpower.Power_model.total b);
  check_close "fraction" 0.9 (Lowpower.Power_model.switching_fraction b)

let test_power_default_switching_dominates () =
  (* With representative parameters, the switching term exceeds 90% of the
     total — the paper's Eqn. 1 discussion. *)
  let p = Lowpower.Power_model.default_params in
  let b = Lowpower.Power_model.power p ~capacitance:50.0e-12 ~activity:10.0 in
  Alcotest.(check bool) "switching > 90%" true
    (Lowpower.Power_model.switching_fraction b > 0.9)

let test_voltage_scaling_quadratic () =
  let p = Lowpower.Power_model.default_params in
  let half = Lowpower.Power_model.scale_voltage p (p.Lowpower.Power_model.vdd /. 2.0) in
  let b1 = Lowpower.Power_model.power p ~capacitance:1.0e-12 ~activity:1.0 in
  let b2 = Lowpower.Power_model.power half ~capacitance:1.0e-12 ~activity:1.0 in
  check_close_rel ~eps:1e-6 "quadratic drop" 4.0
    (b1.Lowpower.Power_model.switching /. b2.Lowpower.Power_model.switching)

let test_gate_delay_grows_at_low_vdd () =
  let p = Lowpower.Power_model.default_params in
  let d_hi = Lowpower.Power_model.gate_delay p ~v_threshold:0.7 ~drive:1.0 ~load:1.0 in
  let low = Lowpower.Power_model.scale_voltage p 1.2 in
  let d_lo = Lowpower.Power_model.gate_delay low ~v_threshold:0.7 ~drive:1.0 ~load:1.0 in
  Alcotest.(check bool) "slower at low vdd" true (d_lo > d_hi)

let test_gate_delay_invalid () =
  let p = Lowpower.Power_model.scale_voltage Lowpower.Power_model.default_params 0.5 in
  expect_invalid_arg "below threshold" (fun () ->
      Lowpower.Power_model.gate_delay p ~v_threshold:0.7 ~drive:1.0 ~load:1.0)

let test_max_frequency_ref_point () =
  let p = Lowpower.Power_model.default_params in
  let f =
    Lowpower.Power_model.max_frequency p ~v_threshold:0.7
      ~critical_delay_at_vdd:10.0e-9 ~ref_vdd:p.Lowpower.Power_model.vdd
  in
  check_close_rel ~eps:1e-9 "at reference vdd, f = 1/delay" 1.0e8 f

(* --- Stats --- *)

let test_stats_mean_stddev () =
  check_close "mean" 2.0 (Lowpower.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_close "mean empty" 0.0 (Lowpower.Stats.mean []);
  check_close "stddev" (sqrt (2.0 /. 3.0))
    (Lowpower.Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_minmax () =
  check_close "min" 1.0 (Lowpower.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_close "max" 3.0 (Lowpower.Stats.maximum [ 3.0; 1.0; 2.0 ]);
  expect_invalid_arg "min empty" (fun () -> Lowpower.Stats.minimum [])

let test_stats_correlation () =
  check_close "perfect" 1.0
    (Lowpower.Stats.correlation [ 1.0; 2.0; 3.0 ] [ 2.0; 4.0; 6.0 ]);
  check_close "anti" (-1.0)
    (Lowpower.Stats.correlation [ 1.0; 2.0; 3.0 ] [ 3.0; 2.0; 1.0 ]);
  check_close "constant series" 0.0
    (Lowpower.Stats.correlation [ 1.0; 1.0; 1.0 ] [ 1.0; 2.0; 3.0 ]);
  expect_invalid_arg "length mismatch" (fun () ->
      Lowpower.Stats.correlation [ 1.0 ] [ 1.0; 2.0 ])

let test_stats_errors () =
  check_close "rms" 1.0 (Lowpower.Stats.rms_error [ 1.0; 3.0 ] [ 2.0; 2.0 ]);
  check_close "mape" 0.5
    (Lowpower.Stats.mean_abs_pct_error [ 1.0; 3.0 ] [ 2.0; 2.0 ])

(* --- Table --- *)

let test_table_renders () =
  let t =
    Lowpower.Table.create ~caption:"cap"
      [ ("name", Lowpower.Table.Left); ("v", Lowpower.Table.Right) ]
  in
  Lowpower.Table.add_row t [ "a"; "1" ];
  Lowpower.Table.add_rule t;
  Lowpower.Table.add_row t [ "bb"; "22" ];
  Lowpower.Table.note t "a note";
  let s = Format.asprintf "%a" Lowpower.Table.pp t in
  Alcotest.(check bool) "caption present" true
    (String.length s > 0 && String.sub s 0 3 = "cap");
  Alcotest.(check bool) "note present" true
    (String.length s > 0
    && Option.is_some (String.index_opt s ':'))

let test_table_arity () =
  let t = Lowpower.Table.create [ ("a", Lowpower.Table.Left) ] in
  expect_invalid_arg "arity" (fun () -> Lowpower.Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "float" "1.500" (Lowpower.Table.cell_float 1.5);
  Alcotest.(check string) "pct" "37.2%" (Lowpower.Table.cell_pct 0.372);
  Alcotest.(check string) "ratio" "1.83x" (Lowpower.Table.cell_ratio 1.83)

let suite =
  [
    quick "rng determinism" test_rng_determinism;
    quick "rng seeds differ" test_rng_seeds_differ;
    quick "rng copy" test_rng_copy;
    quick "rng split" test_rng_split_independent;
    quick "rng int bounds" test_rng_int_bounds;
    quick "rng float bounds" test_rng_float_bounds;
    quick "rng bernoulli mean" test_rng_bernoulli_mean;
    quick "rng shuffle permutes" test_rng_shuffle_permutes;
    quick "rng gaussian moments" test_rng_gaussian_moments;
    quick "rng pick" test_rng_pick;
    quick "power eqn1 terms" test_power_terms;
    quick "power total and fraction" test_power_total_and_fraction;
    quick "power switching dominates (paper Eqn 1)" test_power_default_switching_dominates;
    quick "power quadratic voltage scaling" test_voltage_scaling_quadratic;
    quick "gate delay grows at low vdd" test_gate_delay_grows_at_low_vdd;
    quick "gate delay below threshold rejected" test_gate_delay_invalid;
    quick "max frequency at reference" test_max_frequency_ref_point;
    quick "stats mean stddev" test_stats_mean_stddev;
    quick "stats min max" test_stats_minmax;
    quick "stats correlation" test_stats_correlation;
    quick "stats error metrics" test_stats_errors;
    quick "table renders" test_table_renders;
    quick "table arity check" test_table_arity;
    quick "table cell formats" test_table_cells;
  ]
