(* Coverage of the smaller API surfaces: pretty-printers, accessors and
   corner cases not exercised by the behavioural suites. *)

open Test_util

let test_network_pp_smoke () =
  let net = (Circuits.ripple_adder 2).Circuits.net in
  let s = Format.asprintf "%a" Network.pp net in
  Alcotest.(check bool) "mentions inputs" true
    (Option.is_some (String.index_opt s 'a'));
  Alcotest.(check bool) "mentions outputs" true
    (let re = "output" in
     let rec find i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_stg_pp_smoke () =
  let stg = Gen_fsm.modulo_counter ~modulus:3 in
  let s = Format.asprintf "%a" Stg.pp stg in
  Alcotest.(check bool) "lists transitions" true (String.length s > 40)

let test_cover_pp_and_cubes () =
  let f =
    Cover.of_cubes 3
      [ Cube.of_lits [ (0, true) ] ~n:3; Cube.of_lits [ (2, false) ] ~n:3 ]
  in
  let s = Format.asprintf "%a" Cover.pp f in
  Alcotest.(check bool) "positional rows" true
    (String.length s >= 7);
  Alcotest.(check int) "cubes accessor" 2 (List.length (Cover.cubes f));
  Alcotest.(check int) "num_vars" 3 (Cover.num_vars f)

let test_isa_pp_all_forms () =
  let program =
    [ Isa.Li (0, 5); Isa.Ld (1, 2); Isa.St (3, 1); Isa.Ldx (2, 0);
      Isa.Stx (0, 2); Isa.Mov (3, 2); Isa.Add (4, 3, 2); Isa.Addi (4, 4, 1);
      Isa.Sub (5, 4, 3); Isa.Mul (6, 5, 4); Isa.Shl (7, 6, 2);
      Isa.Clracc; Isa.Mac (4, 5); Isa.Rdacc 6; Isa.Dec 0; Isa.Bnz (0, 0);
      Isa.Pair (Isa.Ld (7, 9), Isa.Mac (4, 5)); Isa.Nop ]
  in
  let s = Format.asprintf "%a" Isa.pp program in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("prints " ^ fragment) true
        (let rec find i =
           i + String.length fragment <= String.length s
           && (String.sub s i (String.length fragment) = fragment
              || find (i + 1))
         in
         find 0))
    [ "li"; "ldx"; "stx"; "addi"; "dec"; "bnz"; "mac"; "{"; "nop" ]

let test_expr_pp_variants () =
  Alcotest.(check string) "xor" "x0 ^ x1"
    (Expr.to_string Expr.(var 0 ^^^ var 1));
  Alcotest.(check string) "const" "1" (Expr.to_string Expr.tru);
  Alcotest.(check string) "nested negation" "(x0 + x1)'"
    (Expr.to_string (Expr.Not (Expr.Or [ Expr.var 0; Expr.var 1 ])))

let test_power_model_pp () =
  let b =
    Lowpower.Power_model.power Lowpower.Power_model.default_params
      ~capacitance:1.0e-12 ~activity:2.0
  in
  let s = Format.asprintf "%a" Lowpower.Power_model.pp_breakdown b in
  Alcotest.(check bool) "has units" true
    (Option.is_some (String.index_opt s 'W'))

let test_event_sim_node_activity () =
  let net, _ = Circuits.parity_tree 2 in
  let stim = Stimulus.of_ints ~width:2 [ 0b00; 0b01; 0b11; 0b10 ] in
  let r = Event_sim.run net Event_sim.Zero_delay stim in
  let out = List.assoc "parity" (Network.outputs net) in
  (* Parity of 0,1,0,1: toggles every step. *)
  check_close "per-cycle activity" 1.0 (Event_sim.node_activity r out)

let test_bdd_clear_caches_and_count () =
  let m = Bdd.manager () in
  let _ = Bdd.of_expr m Expr.(var 0 &&& var 1 ||| var 2) in
  Alcotest.(check bool) "nodes created" true (Bdd.node_count m > 0);
  Bdd.clear_caches m;
  (* Still usable and canonical after a cache drop. *)
  Alcotest.(check bool) "canonicity survives" true
    (Bdd.equal
       (Bdd.of_expr m Expr.(var 0 &&& var 1))
       (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1)))

let test_mos_structure_accessors () =
  let g = Mos.Series [ Mos.Parallel [ Mos.Input 0; Mos.Input 1 ]; Mos.Input 2 ] in
  Alcotest.(check int) "num inputs" 3 (Mos.num_inputs g);
  let elaborated = Mos.elaborate ~internal_cap:0.3 ~output_cap:2.0 g in
  Alcotest.(check int) "internals" 1 (Mos.internal_node_count elaborated)

let test_schedule_of_impl_choice () =
  let dfg = Gen_dfg.fir ~taps:3 () in
  let choice = Module_select.all_cheapest Modlib.default dfg in
  let d = Schedule.of_impl_choice dfg (fun i -> Hashtbl.find choice i) in
  let s = Schedule.asap dfg d in
  Alcotest.(check bool) "schedulable" true (Schedule.valid dfg d s);
  (* Cheapest multiplier takes 3 steps; the critical path reflects it. *)
  Alcotest.(check bool) "slow multipliers lengthen the path" true
    (s.Schedule.makespan >= 5)

let test_limited_weight_codeword_bits () =
  match Limited_weight.make_lwc ~payload_bits:3 ~max_weight:1 with
  | None -> Alcotest.fail "one-hot-ish code exists"
  | Some c ->
    (* Weight <= 1 over n bits gives n + 1 codewords; need 8 -> n = 7. *)
    Alcotest.(check int) "codeword width" 7 (Limited_weight.codeword_bits c)

let test_machine_peek_poke_roundtrip () =
  let m = Machine.create ~width:10 () in
  Machine.poke m 100 1234;
  Alcotest.(check int) "masked store" (1234 land 1023) (Machine.peek m 100);
  Alcotest.(check int) "unwritten is zero" 0 (Machine.peek m 999)

let test_seq_circuit_accessors () =
  let stg = Gen_fsm.counter ~bits:2 in
  let synth = Fsm_synth.synthesize stg (Encode.binary ~num_states:4) in
  let c = synth.Fsm_synth.circuit in
  Alcotest.(check int) "register count" 2 (Seq_circuit.register_count c);
  Alcotest.(check int) "one free input" 1 (List.length (Seq_circuit.free_inputs c));
  Alcotest.(check bool) "network accessor" true
    (Network.node_count (Seq_circuit.network c) > 0)

let test_retime_edges_accessor () =
  let g = Retime.create ~num_vertices:2 ~delays:[| 0.0; 1.0 |] in
  Retime.add_edge g ~src:0 ~dst:1 ~weight:2 ();
  Retime.add_edge g ~src:1 ~dst:0 ~weight:0 ();
  Alcotest.(check int) "edges" 2 (List.length (Retime.edges g));
  Alcotest.(check int) "registers" 2 (Retime.register_count g)

let suite =
  [
    quick "network pretty-printer" test_network_pp_smoke;
    quick "stg pretty-printer" test_stg_pp_smoke;
    quick "cover pretty-printer and accessors" test_cover_pp_and_cubes;
    quick "isa pretty-printer covers all forms" test_isa_pp_all_forms;
    quick "expr pretty-printer variants" test_expr_pp_variants;
    quick "power breakdown pretty-printer" test_power_model_pp;
    quick "event sim per-node activity" test_event_sim_node_activity;
    quick "bdd cache management" test_bdd_clear_caches_and_count;
    quick "mos accessors" test_mos_structure_accessors;
    quick "schedule from module choice" test_schedule_of_impl_choice;
    quick "limited-weight codeword width" test_limited_weight_codeword_bits;
    quick "machine memory roundtrip" test_machine_peek_poke_roundtrip;
    quick "seq circuit accessors" test_seq_circuit_accessors;
    quick "retime accessors" test_retime_edges_accessor;
  ]
