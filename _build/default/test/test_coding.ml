(* Tests for lp_coding: Bus, Bus_invert, Limited_weight, Residue. *)

open Test_util

let test_bus_counting () =
  Alcotest.(check int) "hamming" 2 (Bus.hamming 0b1011 0b0010);
  Alcotest.(check int) "popcount" 3 (Bus.popcount 0b1011);
  (* From idle 0: 1 + 1 + 4 transitions. *)
  Alcotest.(check int) "trace transitions" 6
    (Bus.transitions [ 0b0001; 0b0011; 0b1100 ]);
  check_close "per word" 2.0
    (Bus.transitions_per_word [ 0b0001; 0b0011; 0b1100 ]);
  Alcotest.(check bool) "energy positive" true
    (Bus.energy ~cap_per_line:1e-12 ~vdd:3.3 [ 1; 2; 3 ] > 0.0)

(* --- Bus-invert --- *)

let test_paper_example () =
  (* The survey's worked example: previous 0000, current 1011 -> drive 0100
     with E asserted. *)
  let enc = Bus_invert.encode ~width:4 [ 0b0000; 0b1011 ] in
  match enc with
  | [ first; second ] ->
    Alcotest.(check int) "first word plain" 0 first.Bus_invert.driven;
    Alcotest.(check bool) "E low" false first.Bus_invert.invert;
    Alcotest.(check int) "second complemented" 0b0100 second.Bus_invert.driven;
    Alcotest.(check bool) "E high" true second.Bus_invert.invert
  | _ -> Alcotest.fail "arity"

let test_roundtrip () =
  let r = rng () in
  let words = Traces.random_words r ~width:8 ~n:500 in
  Alcotest.(check (list int)) "decode inverts encode" words
    (Bus_invert.decode ~width:8 (Bus_invert.encode ~width:8 words))

let prop_roundtrip =
  prop ~count:100 "bus-invert roundtrip"
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 255))
    (fun words ->
      Bus_invert.decode ~width:8 (Bus_invert.encode ~width:8 words) = words)

let prop_worst_case_bound =
  prop ~count:200 "per-transfer transitions bounded by ceil(n/2)"
    QCheck2.Gen.(list_size (int_range 2 40) (int_bound 255))
    (fun words ->
      let enc = Bus_invert.encode ~width:8 words in
      let rec check prev prev_e = function
        | [] -> true
        | e :: rest ->
          let d =
            Bus.hamming prev e.Bus_invert.driven
            + if prev_e <> e.Bus_invert.invert then 1 else 0
          in
          d <= Bus_invert.max_transitions_per_transfer ~width:8
          && check e.Bus_invert.driven e.Bus_invert.invert rest
      in
      check 0 false enc)

let prop_never_much_worse =
  prop ~count:200 "encoded transitions never exceed raw + wordcount"
    QCheck2.Gen.(list_size (int_range 1 40) (int_bound 4095))
    (fun words ->
      let raw = Bus_invert.raw_transitions ~width:12 words in
      let enc =
        Bus_invert.transitions ~width:12 (Bus_invert.encode ~width:12 words)
      in
      enc <= raw + List.length words)

let test_savings_on_random_data () =
  let r = rng () in
  let words = Traces.random_words r ~width:8 ~n:5000 in
  let s = Bus_invert.saving ~width:8 words in
  (* Known asymptotic for 8-bit random data is ~18%; accept a band. *)
  Alcotest.(check bool)
    (Printf.sprintf "saving %.3f in band" s)
    true
    (s > 0.10 && s < 0.25)

let test_savings_high_activity () =
  (* Alternating complement-heavy trace: bus-invert nearly eliminates it. *)
  let words = List.init 100 (fun i -> if i mod 2 = 0 then 0x00 else 0xFF) in
  let s = Bus_invert.saving ~width:8 words in
  Alcotest.(check bool) "huge saving" true (s > 0.8)

let test_width_validation () =
  expect_invalid_arg "word too wide" (fun () ->
      ignore (Bus_invert.encode ~width:4 [ 0x1F ]));
  expect_invalid_arg "bad width" (fun () ->
      ignore (Bus_invert.encode ~width:0 [ 0 ]))

(* --- Limited weight / gray / transition signaling --- *)

let test_transition_signaling_roundtrip () =
  let r = rng () in
  let words = Traces.random_words r ~width:10 ~n:200 in
  Alcotest.(check (list int)) "designal . signal = id" words
    (Limited_weight.transition_designal
       (Limited_weight.transition_signal words))

let test_gray_conversion () =
  for i = 0 to 255 do
    Alcotest.(check int) "int_of_gray . gray_of_int" i
      (Limited_weight.int_of_gray (Limited_weight.gray_of_int i))
  done

let test_gray_address_savings () =
  let n = 1024 in
  let g = Limited_weight.gray_sequence_transitions n in
  let b = Limited_weight.binary_sequence_transitions n in
  Alcotest.(check int) "gray fetch = n-1 transitions" (n - 1) g;
  (* Binary counting costs ~2 toggles per increment. *)
  Alcotest.(check bool) "binary about 2x" true
    (float_of_int b /. float_of_int g > 1.8)

let test_lwc_construction () =
  match Limited_weight.make_lwc ~payload_bits:4 ~max_weight:2 with
  | None -> Alcotest.fail "code should exist"
  | Some c ->
    Alcotest.(check bool) "wider than payload" true
      (Limited_weight.codeword_bits c >= 4);
    (* All codewords decode back and respect the weight bound. *)
    for p = 0 to 15 do
      let w = Limited_weight.lwc_encode c p in
      Alcotest.(check int) "roundtrip" p (Limited_weight.lwc_decode c w);
      Alcotest.(check bool) "weight bounded" true (Bus.popcount w <= 2)
    done

let test_lwc_infeasible () =
  Alcotest.(check bool) "weight 0 impossible" true
    (Limited_weight.make_lwc ~payload_bits:4 ~max_weight:0 = None)

let test_lwc_bus_bound () =
  match Limited_weight.make_lwc ~payload_bits:6 ~max_weight:3 with
  | None -> Alcotest.fail "code should exist"
  | Some c ->
    let r = rng () in
    let payloads = Traces.random_words r ~width:6 ~n:300 in
    let t = Limited_weight.lwc_bus_transitions c payloads in
    Alcotest.(check bool) "bounded by w per transfer" true (t <= 3 * 300)

(* --- Residue --- *)

let test_residue_roundtrip () =
  let sys = Residue.standard in
  for x = 0 to 200 do
    Alcotest.(check int) "decode . encode" x
      (Residue.decode sys (Residue.encode sys x))
  done

let test_residue_arithmetic () =
  let sys = Residue.make [ 3; 5; 7 ] in
  let n = Residue.range sys in
  Alcotest.(check int) "range" 105 n;
  let r = rng () in
  for _ = 1 to 200 do
    let a = Lowpower.Rng.int r n and b = Lowpower.Rng.int r n in
    Alcotest.(check int) "add"
      ((a + b) mod n)
      (Residue.decode sys (Residue.add sys (Residue.encode sys a) (Residue.encode sys b)));
    Alcotest.(check int) "mul"
      (a * b mod n)
      (Residue.decode sys (Residue.mul sys (Residue.encode sys a) (Residue.encode sys b)))
  done

let test_residue_coprime_check () =
  expect_invalid_arg "not coprime" (fun () -> ignore (Residue.make [ 4; 6 ]));
  expect_invalid_arg "below 2" (fun () -> ignore (Residue.make [ 1; 3 ]))

let test_one_hot_transitions_bounded () =
  let sys = Residue.make [ 3; 5; 7 ] in
  let a = Residue.encode sys 13 and b = Residue.encode sys 87 in
  let t = Residue.one_hot_transitions sys a b in
  (* At most 2 per digit. *)
  Alcotest.(check bool) "bounded" true (t <= 2 * 3);
  Alcotest.(check int) "no change, no toggles" 0
    (Residue.one_hot_transitions sys a a)

let test_accumulator_comparison () =
  let r = rng () in
  let data = Traces.random_words r ~width:10 ~n:2000 in
  let sys = Residue.standard in
  let rns = Residue.accumulate_transitions sys data in
  let bin = Residue.binary_accumulate_transitions ~width:10 data in
  (* The one-hot RNS accumulator toggles a bounded 2/digit; binary ripples.
     Toggles per step: RNS <= 8, binary averages ~width/2 + carries. *)
  Alcotest.(check bool) "rns bounded per step" true (rns <= 2 * 4 * 2000);
  Alcotest.(check bool) "positive work measured" true (bin > 0 && rns > 0)

let suite =
  [
    quick "bus transition counting" test_bus_counting;
    quick "paper's 0000->1011 example" test_paper_example;
    quick "bus-invert roundtrip" test_roundtrip;
    prop_roundtrip;
    prop_worst_case_bound;
    prop_never_much_worse;
    quick "bus-invert saves ~18% on random 8-bit data" test_savings_on_random_data;
    quick "bus-invert on complement-heavy data" test_savings_high_activity;
    quick "bus-invert width validation" test_width_validation;
    quick "transition signaling roundtrip" test_transition_signaling_roundtrip;
    quick "gray conversions" test_gray_conversion;
    quick "gray addressing halves fetch transitions" test_gray_address_savings;
    quick "limited-weight code construction" test_lwc_construction;
    quick "limited-weight infeasible" test_lwc_infeasible;
    quick "limited-weight bus bound" test_lwc_bus_bound;
    quick "residue roundtrip" test_residue_roundtrip;
    quick "residue arithmetic" test_residue_arithmetic;
    quick "residue coprimality enforced" test_residue_coprime_check;
    quick "one-hot transitions bounded" test_one_hot_transitions_bounded;
    quick "accumulator transition comparison" test_accumulator_comparison;
  ]
