(* Tests for lp_synth: Techlib, Subject, Mapper, Dontcare, Factor, Balance. *)

open Test_util

(* --- Techlib --- *)

let test_cells_consistent () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Techlib.cell_name ^ " pattern matches function")
        true (Techlib.check c))
    Techlib.default

let test_cell_lookup () =
  let c = Techlib.find Techlib.default "NAND2" in
  Alcotest.(check int) "arity" 2 c.Techlib.arity;
  Alcotest.(check bool) "missing cell" true
    (match Techlib.find Techlib.default "NAND9" with
    | exception Not_found -> true
    | _ -> false)

let test_pattern_func () =
  let p = Techlib.Inv (Techlib.Nand (Techlib.L 0, Techlib.L 1)) in
  Alcotest.(check bool) "and2" true
    (Truth_table.equal
       (Truth_table.of_expr 2 (Techlib.pattern_func p))
       (Truth_table.of_expr 2 Expr.(var 0 &&& var 1)))

(* --- Subject graphs --- *)

let test_decompose_equivalent () =
  let net = (Circuits.carry_select_adder 4).Circuits.net in
  let subj = Subject.decompose net in
  Alcotest.(check bool) "is subject graph" true (Subject.is_subject_graph subj);
  Alcotest.(check bool) "equivalent" true (networks_equivalent net subj)

let test_decompose_xor_shape () =
  let net = (Circuits.array_multiplier 3).Circuits.net in
  let subj = Subject.decompose net in
  Alcotest.(check bool) "is subject graph" true (Subject.is_subject_graph subj);
  Alcotest.(check bool) "equivalent" true (networks_equivalent net subj)

let test_decompose_for_power_equivalent () =
  let net = (Circuits.comparator 4).Circuits.net in
  let input_probs = Array.init 8 (fun k -> [| 0.9; 0.5; 0.2; 0.7 |].(k mod 4)) in
  let subj = Subject.decompose_for_power net ~input_probs in
  Alcotest.(check bool) "is subject graph" true (Subject.is_subject_graph subj);
  Alcotest.(check bool) "equivalent" true (networks_equivalent net subj)

let test_decompose_for_power_lowers_activity () =
  (* A wide AND with one rare input: absorbing the rare input first quiets
     the whole chain. *)
  let net = Network.create () in
  let ins = List.init 6 (fun _ -> Network.add_input net) in
  let g =
    Network.add_node net
      (Expr.and_list (List.init 6 Expr.var))
      ins
  in
  Network.set_output net "z" g;
  let input_probs = [| 0.9; 0.9; 0.9; 0.9; 0.9; 0.05 |] in
  let act n =
    Activity.switched_capacitance n
      (Activity.zero_delay n ~input_probs)
  in
  let balanced = Subject.decompose net in
  let power = Subject.decompose_for_power net ~input_probs in
  Alcotest.(check bool) "power decomposition quieter" true
    (act power < act balanced);
  Alcotest.(check bool) "still equivalent" true
    (networks_equivalent net power)

let test_decompose_rejects_constants () =
  let net = Network.create () in
  let _ = Network.add_input net in
  let c = Network.add_node net Expr.tru [] in
  Network.set_output net "z" c;
  expect_invalid_arg "constant node" (fun () -> Subject.decompose net)

(* --- Mapper --- *)

let mapped_equiv objective net =
  let subj = Subject.decompose net in
  let m = Mapper.map subj objective in
  let out = Mapper.netlist m in
  (m, networks_equivalent net out)

let test_map_area_equivalent () =
  let net = (Circuits.ripple_adder 3).Circuits.net in
  let _, ok = mapped_equiv Mapper.Area net in
  Alcotest.(check bool) "area mapping preserves function" true ok

let test_map_delay_equivalent () =
  let net = (Circuits.comparator 4).Circuits.net in
  let _, ok = mapped_equiv Mapper.Delay net in
  Alcotest.(check bool) "delay mapping preserves function" true ok

let test_map_power_equivalent () =
  let net = (Circuits.ripple_adder 3).Circuits.net in
  let subj = Subject.decompose net in
  let act = Activity.zero_delay subj ~input_probs:(Probability.uniform_inputs subj) in
  let m = Mapper.map subj (Mapper.Power act) in
  Alcotest.(check bool) "power mapping preserves function" true
    (networks_equivalent net (Mapper.netlist m))

let test_map_area_beats_delay_on_area () =
  let net = (Circuits.array_multiplier 3).Circuits.net in
  let subj = Subject.decompose net in
  let ma = Mapper.map subj Mapper.Area in
  let md = Mapper.map subj Mapper.Delay in
  Alcotest.(check bool) "area objective wins area" true
    (Mapper.total_area ma <= Mapper.total_area md +. 1e-9);
  Alcotest.(check bool) "delay objective wins delay" true
    (Mapper.critical_delay md <= Mapper.critical_delay ma +. 1e-9)

let test_map_power_beats_area_on_power () =
  let net = (Circuits.array_multiplier 3).Circuits.net in
  let subj = Subject.decompose net in
  let input_probs = Probability.uniform_inputs subj in
  let act = Activity.zero_delay subj ~input_probs in
  let mp = Mapper.map subj (Mapper.Power act) in
  let ma = Mapper.map subj Mapper.Area in
  Alcotest.(check bool) "power objective wins switched cap" true
    (Mapper.switched_capacitance mp ~input_probs
    <= Mapper.switched_capacitance ma ~input_probs +. 1e-9)

let test_map_uses_complex_cells () =
  let net = (Circuits.comparator 5).Circuits.net in
  let subj = Subject.decompose net in
  let m = Mapper.map subj Mapper.Area in
  let insts = Mapper.instances m in
  let interesting =
    List.filter (fun (n, _) -> n <> "INV" && n <> "NAND2") insts
  in
  Alcotest.(check bool) "beyond INV/NAND2" true (interesting <> [])

let test_map_rejects_non_subject () =
  let net = (Circuits.ripple_adder 2).Circuits.net in
  expect_invalid_arg "not decomposed" (fun () ->
      ignore (Mapper.map net Mapper.Area))

let test_map_custom_library_failure () =
  let net = (Circuits.ripple_adder 2).Circuits.net in
  let subj = Subject.decompose net in
  let only_inv = [ Techlib.find Techlib.default "INV" ] in
  expect_invalid_arg "inadequate library" (fun () ->
      ignore (Mapper.map ~cells:only_inv subj Mapper.Area))

(* --- Don't cares --- *)

let test_sdc_detected () =
  (* g's fanins are a and ~a: combinations (0,0) and (1,1) are
     unreachable. *)
  let net = Network.create () in
  let a = Network.add_input net in
  let na = Network.add_node net (Expr.not_ (Expr.var 0)) [ a ] in
  let g = Network.add_node net Expr.(var 0 &&& var 1) [ a; na ] in
  Network.set_output net "z" g;
  let d = Dontcare.compute net g in
  Alcotest.(check bool) "minterm 00 is sdc" true
    (Truth_table.get d.Dontcare.dontcare 0b00);
  Alcotest.(check bool) "minterm 11 is sdc" true
    (Truth_table.get d.Dontcare.dontcare 0b11);
  Alcotest.(check bool) "minterm 01 reachable" false
    (Truth_table.get d.Dontcare.dontcare 0b01)

let test_odc_detected () =
  (* z = g & a where g = a | b: when a = 0, g is unobservable. *)
  let net = Network.create () in
  let a = Network.add_input net in
  let b = Network.add_input net in
  let g = Network.add_node net Expr.(var 0 ||| var 1) [ a; b ] in
  let z = Network.add_node net Expr.(var 0 &&& var 1) [ g; a ] in
  Network.set_output net "z" z;
  let d = Dontcare.compute net g in
  (* Fanins of g are (a, b); combos with a = 0 are ODC. *)
  Alcotest.(check bool) "a=0,b=0 odc" true (Truth_table.get d.Dontcare.dontcare 0b00);
  Alcotest.(check bool) "a=0,b=1 odc" true (Truth_table.get d.Dontcare.dontcare 0b10);
  Alcotest.(check bool) "a=1,b=0 care" false (Truth_table.get d.Dontcare.dontcare 0b01)

let test_optimize_preserves_outputs () =
  let r = rng () in
  for _ = 1 to 5 do
    let net =
      Gen_comb.random r
        { Gen_comb.default_shape with Gen_comb.num_inputs = 6; num_gates = 15 }
    in
    let reference = Network.copy net in
    let changed = Dontcare.optimize net Dontcare.For_area in
    ignore changed;
    Alcotest.(check bool) "area dc-optimization is safe" true
      (networks_equivalent reference net)
  done

let test_optimize_power_preserves_and_helps () =
  let r = rng () in
  let improved = ref 0 in
  for _ = 1 to 5 do
    let net =
      Gen_comb.random r
        { Gen_comb.default_shape with Gen_comb.num_inputs = 6; num_gates = 15 }
    in
    let reference = Network.copy net in
    let input_probs = Probability.uniform_inputs net in
    let before =
      Activity.switched_capacitance net
        (Activity.zero_delay net ~input_probs)
    in
    let _ = Dontcare.optimize net (Dontcare.For_power input_probs) in
    Alcotest.(check bool) "power dc-optimization is safe" true
      (networks_equivalent reference net);
    let after =
      Activity.switched_capacitance net
        (Activity.zero_delay net ~input_probs)
    in
    if after < before -. 1e-9 then incr improved
  done;
  Alcotest.(check bool) "at least one network improved" true (!improved > 0)

let test_optimize_fanout_policy () =
  (* [19]: the fanout-aware policy is safe and no worse than the purely
     local one on total switched capacitance. *)
  let r = rng () in
  let better_or_equal = ref 0 and total = ref 0 in
  for _ = 1 to 4 do
    let shape =
      { Gen_comb.default_shape with Gen_comb.num_inputs = 6; num_gates = 14 }
    in
    let seed_net = Gen_comb.random r shape in
    let input_probs = Probability.uniform_inputs seed_net in
    let run policy =
      let net = Network.copy seed_net in
      let _ = Dontcare.optimize net policy in
      Alcotest.(check bool) "safe" true (networks_equivalent seed_net net);
      Activity.switched_capacitance net (Activity.zero_delay net ~input_probs)
    in
    let local = run (Dontcare.For_power input_probs) in
    let fanout = run (Dontcare.For_power_fanout input_probs) in
    incr total;
    if fanout <= local +. 1e-9 then incr better_or_equal
  done;
  Alcotest.(check bool) "fanout-aware wins or ties on most networks" true
    (!better_or_equal * 2 >= !total)

(* --- Factor --- *)

let sop_of_string_pairs lits = lits (* readability alias *)

let test_division () =
  ignore sop_of_string_pairs;
  (* f = a c + a d + b c + b d; f / (c + d) = a + b, remainder 0. *)
  let a = Factor.lit_pos 0 and b = Factor.lit_pos 1 in
  let c = Factor.lit_pos 2 and d = Factor.lit_pos 3 in
  let f = [ [ a; c ]; [ a; d ]; [ b; c ]; [ b; d ] ] in
  let divisor = [ [ c ]; [ d ] ] in
  let q, r = Factor.divide f divisor in
  Alcotest.(check bool) "quotient a + b" true
    (List.sort compare q = [ [ a ]; [ b ] ]);
  Alcotest.(check bool) "no remainder" true (r = [])

let test_kernels_found () =
  let a = Factor.lit_pos 0 and b = Factor.lit_pos 1 in
  let c = Factor.lit_pos 2 and d = Factor.lit_pos 3 in
  let f = [ [ a; c ]; [ a; d ]; [ b; c ]; [ b; d ] ] in
  let ks = List.map snd (Factor.kernels f) in
  Alcotest.(check bool) "kernel c + d found" true
    (List.exists (fun k -> List.sort compare k = [ [ c ]; [ d ] ]) ks);
  Alcotest.(check bool) "kernel a + b found" true
    (List.exists (fun k -> List.sort compare k = [ [ a ]; [ b ] ]) ks)

let test_extract_reduces_literals () =
  let a = Factor.lit_pos 0 and b = Factor.lit_pos 1 in
  let c = Factor.lit_pos 2 and d = Factor.lit_pos 3 in
  let f = [ [ a; c ]; [ a; d ]; [ b; c ]; [ b; d ] ] in
  let ext = Factor.extract Factor.Literals ~nvars:4 [ ("f", f) ] in
  Alcotest.(check bool) "extraction happened" true (ext.Factor.defs <> []);
  Alcotest.(check bool) "cost reduced" true
    (Factor.total_cost Factor.Literals ext < 8.0)

let test_extract_network_equivalent () =
  let r = rng () in
  let funcs = Gen_comb.random_sop_set r ~nvars:6 ~nfuncs:3 ~cubes:6 ~max_lits:3 in
  let flat = Factor.extract ~max_new:0 Factor.Literals ~nvars:6 funcs in
  let ext = Factor.extract Factor.Literals ~nvars:6 funcs in
  Alcotest.(check bool) "factored network equals flat network" true
    (networks_equivalent (Factor.to_network flat) (Factor.to_network ext))

let test_activity_extract_prefers_quiet_signals () =
  (* Two structurally identical kernels: one over quiet variables (p near
     0), one over busy ones (p = 0.5).  Plain literal count sees a tie;
     the activity-weighted cost of [35] must pick the BUSY kernel: that
     extraction eliminates duplicated high-activity literals and replaces
     them with a single, less active intermediate signal, which is the
     larger switched-capacitance saving. *)
  let q1 = Factor.lit_pos 0 and q2 = Factor.lit_pos 1 in
  let b1 = Factor.lit_pos 2 and b2 = Factor.lit_pos 3 in
  let x = Factor.lit_pos 4 and y = Factor.lit_pos 5 in
  let funcs =
    [
      ("f1", [ [ x; q1 ]; [ x; q2 ] ]);
      ("f2", [ [ y; q1 ]; [ y; q2 ] ]);
      ("g1", [ [ x; b1 ]; [ x; b2 ] ]);
      ("g2", [ [ y; b1 ]; [ y; b2 ] ]);
    ]
  in
  let prob = function 0 | 1 -> 0.02 | _ -> 0.5 in
  let weight v = 2.0 *. prob v *. (1.0 -. prob v) in
  let cost = Factor.Activity { weight; prob } in
  let ext = Factor.extract ~max_new:1 cost ~nvars:6 funcs in
  match ext.Factor.defs with
  | [ (_, k) ] ->
    let vars =
      List.sort_uniq compare (List.map Factor.lit_var (List.concat k))
    in
    Alcotest.(check (list int)) "busy kernel chosen" [ 2; 3 ] vars
  | _ -> Alcotest.fail "expected exactly one extraction"

let prop_sop_expr_roundtrip =
  prop ~count:100 "sop <-> expr roundtrip"
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 1 3) (int_bound 7)))
    (fun sop ->
      (* Deduplicate conflicting literals within a cube first. *)
      let clean =
        List.map
          (fun cube ->
            List.sort_uniq compare
              (List.filter (fun l -> not (List.mem (l lxor 1) cube)) cube))
          sop
      in
      let e = Factor.expr_of_sop clean in
      match Factor.sop_of_expr e with
      | _ -> true
      | exception Invalid_argument _ -> false)

(* --- Cleanup --- *)

let test_cleanup_constants () =
  let net = Network.create () in
  let a = Network.add_input net in
  let one = Network.add_node net Expr.tru [] in
  let g = Network.add_node net Expr.(var 0 &&& var 1) [ a; one ] in
  Network.set_output net "z" g;
  let reference = Network.copy net in
  let changes = Cleanup.run net in
  Alcotest.(check bool) "changed" true (changes > 0);
  Alcotest.(check bool) "equivalent" true (networks_equivalent reference net);
  (* z = a & 1 = a: the AND collapses to a buffer and the constant dies. *)
  Alcotest.(check bool) "constant swept" true
    (List.for_all
       (fun i ->
         Network.is_input net i
         || not (Expr.equal (Network.func net i) Expr.tru))
       (Network.node_ids net))

let test_cleanup_double_inverter () =
  let net = Network.create () in
  let a = Network.add_input net in
  let n1 = Network.add_node net (Expr.not_ (Expr.var 0)) [ a ] in
  let n2 = Network.add_node net (Expr.not_ (Expr.var 0)) [ n1 ] in
  let g = Network.add_node net Expr.(var 0 ||| var 1) [ n2; a ] in
  Network.set_output net "z" g;
  let reference = Network.copy net in
  ignore (Cleanup.run net);
  Alcotest.(check bool) "equivalent" true (networks_equivalent reference net);
  (* The pair of inverters is bypassed and swept. *)
  Alcotest.(check int) "only the OR remains" 1 (Network.node_count net)

let test_cleanup_idempotent_on_clean_nets () =
  let net = (Circuits.ripple_adder 4).Circuits.net in
  Alcotest.(check int) "nothing to do" 0 (Cleanup.run net)

let test_cleanup_random_safe () =
  let r = rng () in
  for _ = 1 to 5 do
    let net = Gen_comb.random r Gen_comb.default_shape in
    let reference = Network.copy net in
    ignore (Cleanup.run net);
    Alcotest.(check bool) "cleanup safe" true (networks_equivalent reference net)
  done

(* --- Balance --- *)

let test_balance_removes_imbalance () =
  let net = Gen_comb.deep_chain ~width:4 ~depth:8 in
  Alcotest.(check bool) "imbalanced before" true (Balance.imbalance net > 0);
  let balanced, inserted = Balance.balance net in
  Alcotest.(check int) "balanced after" 0 (Balance.imbalance balanced);
  Alcotest.(check bool) "buffers inserted" true (inserted > 0)

let test_balance_preserves_function_and_depth () =
  let net = (Circuits.ripple_adder 4).Circuits.net in
  let balanced, _ = Balance.balance net in
  Alcotest.(check bool) "function preserved" true
    (networks_equivalent net balanced);
  (* Unit-delay critical path must not grow: buffers only pad slack. *)
  let lvl n =
    List.fold_left
      (fun acc (_, o) -> max acc (Network.level n o))
      0 (Network.outputs n)
  in
  Alcotest.(check int) "critical level unchanged" (lvl net) (lvl balanced)

let test_balance_reduces_glitches () =
  let net = (Circuits.array_multiplier 4).Circuits.net in
  let balanced, _ = Balance.balance net in
  let stim = Stimulus.random (rng ()) ~width:8 ~length:300 () in
  let before = Event_sim.run net Event_sim.Unit_delay stim in
  let after = Event_sim.run balanced Event_sim.Unit_delay stim in
  Alcotest.(check bool) "spurious fraction falls" true
    (Event_sim.spurious_fraction after < Event_sim.spurious_fraction before)

let test_balance_budget_respected () =
  let net = Gen_comb.deep_chain ~width:4 ~depth:10 in
  let _, inserted = Balance.balance ~budget:3 net in
  Alcotest.(check bool) "at most 3" true (inserted <= 3)

let test_selective_threshold () =
  let net = Gen_comb.deep_chain ~width:4 ~depth:10 in
  let all, n_all = Balance.balance net in
  let some, n_some = Balance.selective net ~threshold:4 in
  Alcotest.(check bool) "selective never inserts more" true (n_some <= n_all);
  Alcotest.(check int) "full balancing complete" 0 (Balance.imbalance all);
  (* Small gaps below the threshold deliberately remain. *)
  Alcotest.(check bool) "selective leaves residual imbalance" true
    (Balance.imbalance some > 0)

let suite =
  [
    quick "library cells self-consistent" test_cells_consistent;
    quick "cell lookup" test_cell_lookup;
    quick "pattern function" test_pattern_func;
    quick "decompose equivalent (adder)" test_decompose_equivalent;
    quick "decompose equivalent (multiplier/xor)" test_decompose_xor_shape;
    quick "power decomposition equivalent" test_decompose_for_power_equivalent;
    quick "power decomposition lowers activity" test_decompose_for_power_lowers_activity;
    quick "decompose rejects constants" test_decompose_rejects_constants;
    quick "area mapping equivalent" test_map_area_equivalent;
    quick "delay mapping equivalent" test_map_delay_equivalent;
    quick "power mapping equivalent" test_map_power_equivalent;
    quick "objectives optimize their own metric" test_map_area_beats_delay_on_area;
    quick "power mapping wins switched capacitance" test_map_power_beats_area_on_power;
    quick "mapper uses complex cells" test_map_uses_complex_cells;
    quick "mapper rejects raw networks" test_map_rejects_non_subject;
    quick "mapper rejects inadequate library" test_map_custom_library_failure;
    quick "satisfiability don't-cares" test_sdc_detected;
    quick "observability don't-cares" test_odc_detected;
    quick "dc optimization preserves outputs" test_optimize_preserves_outputs;
    quick "power dc optimization safe and useful" test_optimize_power_preserves_and_helps;
    quick "fanout-aware dc policy (paper [19])" test_optimize_fanout_policy;
    quick "algebraic division" test_division;
    quick "kernels found" test_kernels_found;
    quick "extraction reduces literals" test_extract_reduces_literals;
    quick "extraction network equivalent" test_extract_network_equivalent;
    quick "activity extraction prefers quiet kernels" test_activity_extract_prefers_quiet_signals;
    prop_sop_expr_roundtrip;
    quick "cleanup constant propagation" test_cleanup_constants;
    quick "cleanup double inverters" test_cleanup_double_inverter;
    quick "cleanup idempotent on clean nets" test_cleanup_idempotent_on_clean_nets;
    quick "cleanup safe on random nets" test_cleanup_random_safe;
    quick "balance removes imbalance" test_balance_removes_imbalance;
    quick "balance preserves function and depth" test_balance_preserves_function_and_depth;
    quick "balance reduces glitching" test_balance_reduces_glitches;
    quick "balance budget respected" test_balance_budget_respected;
    quick "selective balancing inserts fewer buffers" test_selective_threshold;
  ]
