examples/fsm_low_power.ml: Clock_gate Encode Fsm_synth Gen_fsm List Lowpower Markov Printf Seq_circuit Stg
