examples/quickstart.ml: Activity Balance Circuits Event_sim Format List Lowpower Mapper Network Printf Probability Stimulus Subject
