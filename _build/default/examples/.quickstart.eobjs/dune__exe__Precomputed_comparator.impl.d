examples/precomputed_comparator.ml: Array Circuits Expr Format List Lowpower Precompute Printf Seq_circuit Stimulus
