examples/dsp_software_power.ml: Compile Dfg Energy_model Format Isa Kernels List Lowpower Machine Printf
