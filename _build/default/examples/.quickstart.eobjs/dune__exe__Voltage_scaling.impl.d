examples/voltage_scaling.ml: Allocate Dfg Gen_dfg List Lowpower Modlib Printf Schedule Transform Voltage
