examples/precomputed_comparator.mli:
