examples/quickstart.mli:
