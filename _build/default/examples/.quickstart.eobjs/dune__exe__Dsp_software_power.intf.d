examples/dsp_software_power.mli:
