(* Quickstart: build a small circuit, estimate its power exactly, measure
   it by simulation, and apply one logic-level optimization.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "== lowpower quickstart ==";
  print_newline ();

  (* 1. Build a Boolean network: a 4-bit ripple-carry adder. *)
  let adder = Circuits.ripple_adder 4 in
  let net = adder.Circuits.net in
  Printf.printf "Built a 4-bit ripple adder: %d gates, %d literals, depth %.0f\n"
    (Network.node_count net) (Network.literal_count net)
    (Network.critical_delay net);

  (* 2. Exact switching-activity estimation (BDD-based signal
        probabilities, activity = 2p(1-p) per node). *)
  let input_probs = Probability.uniform_inputs net in
  let activity = Activity.zero_delay net ~input_probs in
  let swcap = Activity.switched_capacitance net activity in
  Printf.printf "Predicted switched capacitance: %.2f units/cycle\n" swcap;

  (* 3. Plug it into Eqn. 1 of the paper (treat units as 20 fF). *)
  List.iter
    (fun i -> Network.set_cap net i (Network.cap net i *. 20.0e-15))
    (Network.node_ids net);
  let breakdown =
    Activity.network_power Lowpower.Power_model.default_params net
      (Activity.zero_delay net ~input_probs)
  in
  Format.printf "Eqn. 1 at 3.3 V / 50 MHz: %a@."
    Lowpower.Power_model.pp_breakdown breakdown;
  (* Restore unit capacitances for the comparisons below. *)
  List.iter (fun i -> Network.set_cap net i 1.0) (Network.node_ids net);
  List.iter
    (fun i -> if not (Network.is_input net i) then ())
    (Network.node_ids net);

  (* 4. Measure the same thing by event-driven simulation, including the
        spurious transitions (glitches) the zero-delay model cannot see. *)
  let rng = Lowpower.Rng.create 2024 in
  let stim = Stimulus.random rng ~width:8 ~length:2000 () in
  let result = Event_sim.run net Event_sim.Unit_delay stim in
  Printf.printf
    "Unit-delay simulation over %d vectors: %.2f units/cycle switched, \
     %.1f%% of transitions are glitches\n"
    2000
    (Event_sim.switched_capacitance net result)
    (100.0 *. Event_sim.spurious_fraction result);

  (* 5. One optimization: path balancing to suppress those glitches. *)
  let balanced, buffers = Balance.balance ~buffer_cap:0.2 net in
  let after = Event_sim.run balanced Event_sim.Unit_delay stim in
  Printf.printf
    "After inserting %d unit-delay buffers: %.2f units/cycle, %.1f%% glitches\n"
    buffers
    (Event_sim.switched_capacitance balanced after)
    (100.0 *. Event_sim.spurious_fraction after);

  (* 6. Technology mapping for power vs area. *)
  let subj = Subject.decompose net in
  let subj_act = Activity.zero_delay subj ~input_probs in
  let by_area = Mapper.map subj Mapper.Area in
  let by_power = Mapper.map subj (Mapper.Power subj_act) in
  Printf.printf
    "Technology mapping: area objective -> %.1f area, %.1f switched cap; \
     power objective -> %.1f area, %.1f switched cap\n"
    (Mapper.total_area by_area)
    (Mapper.switched_capacitance by_area ~input_probs)
    (Mapper.total_area by_power)
    (Mapper.switched_capacitance by_power ~input_probs);
  print_newline ();
  print_endline
    "Next: examples/precomputed_comparator.exe (the paper's Fig. 1),";
  print_endline
    "      examples/fsm_low_power.exe, examples/voltage_scaling.exe,";
  print_endline "      examples/dsp_software_power.exe"
