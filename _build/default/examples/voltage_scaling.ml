(* Behavioral synthesis for low power (paper IV.B): transform a DSP
   data-flow graph to shorten its schedule, then trade the recovered time
   for supply voltage at fixed throughput — the quadratic win of [7].

   Run with: dune exec examples/voltage_scaling.exe *)

let module_cap dfg overhead =
  List.fold_left
    (fun acc i ->
      match Modlib.kind_of_op (Dfg.op dfg i) with
      | Some k ->
        acc +. (Modlib.cheapest Modlib.default k).Modlib.energy_per_op
      | None -> acc)
    0.0
    (Dfg.operation_nodes dfg)
  *. overhead

let () =
  print_endline "== Voltage scaling through behavioral transformations ==";
  let dfg = Gen_dfg.fir ~taps:8 () in
  Printf.printf "Kernel: 8-tap FIR filter, %d operations\n\n" (Dfg.num_ops dfg);

  (* Strength-reduce the power-of-two coefficient multiplies first. *)
  let rng = Lowpower.Rng.create 5 in
  let sr = Transform.strength_reduce dfg in
  assert (Transform.equivalent dfg sr ~rng ~samples:200);
  let thr = Transform.tree_height_reduce sr in
  assert (Transform.equivalent sr thr ~rng ~samples:200);
  Printf.printf "Critical path: %d steps -> %d after tree-height reduction\n"
    (Transform.critical_steps sr ())
    (Transform.critical_steps thr ());

  let schedule dfg resources =
    Schedule.list_schedule dfg (Schedule.uniform_delays dfg) ~resources
  in
  let serial = schedule dfg (fun _ -> 1) in
  let designs =
    [ ("serial, 1 unit of each", dfg, serial, 1.0);
      ("parallel (4 mul, 2 add)",
       dfg,
       schedule dfg (function Modlib.Multiplier_unit -> 4 | _ -> 2),
       1.15);
      ("strength-reduced + balanced, parallel",
       thr,
       schedule thr (function Modlib.Multiplier_unit -> 4 | _ -> 2),
       1.2) ]
  in
  let deadline = serial.Schedule.makespan in
  Printf.printf "Throughput budget: one sample per %d steps at 3.3 V\n\n" deadline;
  print_endline "design                                    steps   Vdd    relative power";
  let base = ref None in
  List.iter
    (fun (name, graph, sched, overhead) ->
      let cap = module_cap graph overhead in
      match
        Voltage.evaluate ~switched_cap:cap ~steps:sched.Schedule.makespan
          ~deadline_steps:deadline ~ref_vdd:3.3 ~v_threshold:0.7
      with
      | None -> Printf.printf "%-42s %3d   (infeasible)\n" name sched.Schedule.makespan
      | Some op ->
        let b =
          match !base with
          | Some b -> b
          | None ->
            base := Some op.Voltage.power;
            op.Voltage.power
        in
        Printf.printf "%-42s %3d   %.2f V   %.2fx\n" name
          sched.Schedule.makespan op.Voltage.vdd (op.Voltage.power /. b))
    designs;
  print_newline ();

  (* Binding also matters: power-aware functional-unit assignment reduces
     the operand switching each physical unit sees ([33],[34]). *)
  let d = Schedule.uniform_delays dfg in
  let sched = schedule dfg (function Modlib.Multiplier_unit -> 2 | _ -> 2) in
  let samples = Gen_dfg.random_samples rng dfg ~n:100 ~correlated:true () in
  let traces = Dfg.operand_trace dfg samples in
  let le = Allocate.left_edge dfg d sched in
  let pa = Allocate.power_aware dfg d sched ~traces ~max_instances:(fun _ -> 3) in
  Printf.printf
    "Functional-unit binding on correlated data: left-edge %.1f operand \
     toggles/evaluation, power-aware %.1f\n"
    (Allocate.operand_toggles dfg sched le ~traces)
    (Allocate.operand_toggles dfg sched pa ~traces)
