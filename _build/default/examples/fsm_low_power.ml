(* Sequential optimization tour (paper III.C): take one finite state
   machine through state encoding for low power, synthesis to gates and
   flip-flops, and self-loop clock gating — measuring at each step.

   Run with: dune exec examples/fsm_low_power.exe *)

let () =
  print_endline "== FSM low-power flow ==";
  (* A 12-state machine with skewed transition probabilities — the case
     where encoding matters. *)
  let rng = Lowpower.Rng.create 99 in
  let stg =
    Gen_fsm.random rng ~num_states:12 ~num_inputs:2 ~num_outputs:2
      ~locality:0.5 ()
  in
  let dist = Markov.uniform_inputs stg in
  Printf.printf "Machine: %d states, %d input bits; %.1f%% of cycles sit on self-loops\n\n"
    (Stg.num_states stg) (Stg.num_inputs stg)
    (100.0 *. Markov.self_loop_probability stg dist);

  (* 1. Encoding comparison: expected flip-flop toggles per cycle. *)
  print_endline "State encodings (weighted switching objective of [35],[47]):";
  let encodings =
    [ ("binary", Encode.binary ~num_states:12);
      ("gray", Encode.gray ~num_states:12);
      ("one-hot", Encode.one_hot ~num_states:12);
      ("low-power", Encode.low_power stg dist) ]
  in
  List.iter
    (fun (name, enc) ->
      Printf.printf "  %-10s %d bits, %.3f FF toggles/cycle\n" name
        enc.Encode.bits
        (Encode.weighted_activity stg dist enc))
    encodings;
  print_newline ();

  (* 2. Synthesize the best and the baseline, verify, and simulate. *)
  let lp = Encode.low_power stg dist in
  let simulate enc =
    let synth = Fsm_synth.synthesize stg enc in
    assert (Fsm_synth.verify synth stg ~rng:(Lowpower.Rng.create 1) ~cycles:500);
    let stats =
      Fsm_synth.simulate_inputs synth stg ~rng:(Lowpower.Rng.create 2) ~dist
        ~cycles:5000
    in
    (synth, stats)
  in
  let synth_bin, stats_bin = simulate (Encode.binary ~num_states:12) in
  let synth_lp, stats_lp = simulate lp in
  Printf.printf
    "binary encoding:    %4d literals of logic, %5d FF toggles, total energy %.0f\n"
    (Fsm_synth.literal_count synth_bin)
    stats_bin.Seq_circuit.ff_output_toggles
    (Seq_circuit.total_energy stats_bin);
  Printf.printf
    "low-power encoding: %4d literals of logic, %5d FF toggles, total energy %.0f\n\n"
    (Fsm_synth.literal_count synth_lp)
    stats_lp.Seq_circuit.ff_output_toggles
    (Seq_circuit.total_energy stats_lp);

  (* 3. Self-loop clock gating ([4], [9]): stop clocking the state
        registers when the machine is not moving. *)
  let gated = Clock_gate.gate_fsm synth_lp stg in
  assert (Fsm_synth.verify gated stg ~rng:(Lowpower.Rng.create 3) ~cycles:500);
  let stats_gated =
    Fsm_synth.simulate_inputs gated stg ~rng:(Lowpower.Rng.create 2) ~dist
      ~cycles:5000
  in
  Printf.printf
    "with self-loop clock gating: clock energy %.0f -> %.0f (%d of %d \
     register-cycles gated), total %.0f -> %.0f\n"
    stats_lp.Seq_circuit.clock_energy stats_gated.Seq_circuit.clock_energy
    stats_gated.Seq_circuit.gated_cycles
    (5000 * Seq_circuit.register_count gated.Fsm_synth.circuit)
    (Seq_circuit.total_energy stats_lp)
    (Seq_circuit.total_energy stats_gated);
  print_endline
    "  (this machine is rarely idle, so the gating logic costs more than \
     it saves - gating pays off on idle-dominated machines:)";
  print_newline ();

  (* 4. The right clock-gating customer: a counter that is enabled only
        10% of the time (the register-file situation the paper
        describes). *)
  let counter = Gen_fsm.counter ~bits:4 in
  let lazy_dist = Markov.biased_inputs counter ~bit_probs:[| 0.1 |] in
  let synth_c = Fsm_synth.synthesize counter (Encode.binary ~num_states:16) in
  let gated_c = Clock_gate.gate_fsm synth_c counter in
  assert (Fsm_synth.verify gated_c counter ~rng:(Lowpower.Rng.create 4) ~cycles:500);
  let sim c =
    Fsm_synth.simulate_inputs c counter ~rng:(Lowpower.Rng.create 5)
      ~dist:lazy_dist ~cycles:5000
  in
  let plain_c = sim synth_c and g_c = sim gated_c in
  Printf.printf
    "counter16 with 10%% enable duty (%.0f%% self-loops): total energy %.0f \
     -> %.0f with gating (%.1f%% saved)\n"
    (100.0 *. Markov.self_loop_probability counter lazy_dist)
    (Seq_circuit.total_energy plain_c)
    (Seq_circuit.total_energy g_c)
    (100.0
    *. (1.0 -. Seq_circuit.total_energy g_c /. Seq_circuit.total_energy plain_c))
