(* The paper's Figure 1, end to end: an n-bit comparator C > D whose
   low-order input registers are load-disabled whenever the MSB comparison
   already decides the output.

   Run with: dune exec examples/precomputed_comparator.exe *)

let () =
  let n = 12 in
  print_endline "== Precomputation (Fig. 1): n-bit comparator ==";
  Printf.printf "Width: %d bits per operand\n\n" n;

  let dp = Circuits.comparator n in
  let keep =
    [ List.nth dp.Circuits.a_bits (n - 1);
      List.nth dp.Circuits.b_bits (n - 1) ]
  in

  (* The predictor functions of [30]: universal quantification of the
     output over everything except the MSBs. *)
  let g1, g0 = Precompute.predictors dp.Circuits.net ~output:"out0" ~keep in
  Format.printf "g1 (forces C>D = 1) = %a@." Expr.pp g1;
  Format.printf "g0 (forces C>D = 0) = %a@." Expr.pp g0;
  let p =
    Precompute.shutdown_probability dp.Circuits.net ~output:"out0" ~keep
      ~input_probs:(Array.make (2 * n) 0.5)
  in
  Printf.printf
    "P(shutdown) = P(g1) + P(g0) = %.3f  (the paper's P(XNOR = 0) = 1/2)\n\n" p;

  (* Build both sequential designs and race them on the same stimulus. *)
  let arch = Precompute.build dp.Circuits.net ~output:"out0" ~keep () in
  let rng = Lowpower.Rng.create 7 in
  let stim = Stimulus.random rng ~width:(2 * n) ~length:1000 () in
  (if Precompute.equivalent arch ~stimulus:stim then
     print_endline "Equivalence check: precomputed design matches plain design"
   else begin
     print_endline "EQUIVALENCE FAILURE";
     exit 1
   end);
  let plain, pre = Precompute.energy_comparison arch ~stimulus:stim in
  let report name (s : Seq_circuit.stats) =
    Printf.printf
      "  %-12s comb %.0f + clock %.0f = %.0f cap units; %d register-cycles gated\n"
      name s.Seq_circuit.comb_energy s.Seq_circuit.clock_energy
      (Seq_circuit.total_energy s) s.Seq_circuit.gated_cycles
  in
  print_newline ();
  report "plain:" plain;
  report "precomputed:" pre;
  Printf.printf "Saving: %.1f%%\n\n"
    (100.0
    *. (1.0
       -. Seq_circuit.total_energy pre /. Seq_circuit.total_energy plain));

  (* The paper: "the reduction in power dissipation is a function of the
     probability that the XNOR gate evaluates to a 0" — sweep the MSB
     statistics to show it. *)
  print_endline "MSB bias sweep (P(C_msb=1), P(D_msb=1)) -> saving:";
  List.iter
    (fun (pa, pb) ->
      let probs = Array.make (2 * n) 0.5 in
      probs.(n - 1) <- pa;
      probs.((2 * n) - 1) <- pb;
      let stim =
        List.init 800 (fun _ ->
            Array.init (2 * n) (fun k -> Lowpower.Rng.bernoulli rng probs.(k)))
      in
      let plain, pre = Precompute.energy_comparison arch ~stimulus:stim in
      let shutdown =
        Precompute.shutdown_probability dp.Circuits.net ~output:"out0" ~keep
          ~input_probs:probs
      in
      Printf.printf "  (%.1f, %.1f): P(shutdown) = %.2f, saving = %5.1f%%\n" pa
        pb shutdown
        (100.0
        *. (1.0
           -. Seq_circuit.total_energy pre /. Seq_circuit.total_energy plain)))
    [ (0.5, 0.5); (0.7, 0.3); (0.9, 0.1); (0.9, 0.9) ]
