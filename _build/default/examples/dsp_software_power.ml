(* Software power optimization (paper V): compile one DSP kernel several
   ways and evaluate it under instruction-level power models of a
   general-purpose CPU and an embedded DSP ([46], [45], [40], [23]).

   Run with: dune exec examples/dsp_software_power.exe *)

let dot_product taps =
  let dfg = Dfg.create ~width:12 () in
  let prods =
    List.init taps (fun k ->
        let x = Dfg.add dfg (Dfg.Input (Printf.sprintf "x%d" k)) [] in
        let y = Dfg.add dfg (Dfg.Input (Printf.sprintf "y%d" k)) [] in
        Dfg.add dfg Dfg.Mul [ x; y ])
  in
  let sum =
    match prods with
    | p :: rest ->
      List.fold_left (fun acc q -> Dfg.add dfg Dfg.Add [ acc; q ]) p rest
    | [] -> assert false
  in
  ignore (Dfg.add dfg (Dfg.Output "dot") [ sum ]);
  dfg

let () =
  print_endline "== Instruction-level power: an 8-term dot product ==";
  let dfg = dot_product 8 in
  let inputs =
    List.mapi (fun k (nm, _) -> (nm, (k * 41) + 3)) (Dfg.inputs dfg)
  in
  let rng = Lowpower.Rng.create 17 in
  let variants =
    [ ("naive: every temp via memory", Compile.naive);
      ("registers + MAC selection", Compile.optimized ());
      ("+ cold scheduling (GP model)",
       Compile.optimized ~profile:Energy_model.gp_cpu ());
      ("+ cold scheduling (DSP model)",
       { (Compile.optimized ~profile:Energy_model.dsp_cpu ()) with
         Compile.pair = false });
      ("+ Ld/MAC pairing (DSP)",
       Compile.optimized ~profile:Energy_model.dsp_cpu ()) ]
  in
  Printf.printf "%-34s %7s %7s %10s %10s\n" "compiler" "instrs" "cycles"
    "GP nJ" "DSP nJ";
  List.iter
    (fun (name, opts) ->
      let comp = Compile.compile opts dfg in
      assert (Compile.verify comp dfg ~rng ~samples:50);
      let e_gp, cycles = Compile.measure comp Energy_model.gp_cpu ~width:12 inputs in
      let e_dsp, _ = Compile.measure comp Energy_model.dsp_cpu ~width:12 inputs in
      Printf.printf "%-34s %7d %7d %10.1f %10.1f\n" name
        (List.length comp.Compile.program)
        cycles e_gp e_dsp)
    variants;
  print_newline ();

  (* Show the paired DSP inner loop the compiler produced. *)
  let comp =
    Compile.compile
      { (Compile.optimized ~profile:Energy_model.dsp_cpu ()) with
        Compile.registers = 4 }
      dfg
  in
  print_endline "Generated code (4 registers, DSP scheduling + pairing):";
  Format.printf "%a@." Isa.pp comp.Compile.program;

  (* Streaming form: the loop a real DSP would run. *)
  let taps = 4 and samples = 32 in
  let coeffs = List.init taps (fun k -> (2 * k) + 1) in
  let xs = List.init (samples + taps - 1) (fun k -> (k * 7) land 4095) in
  let run name (program, layout) =
    let m = Machine.create ~width:16 () in
    Kernels.load_fir_inputs m layout ~coeffs ~xs;
    let cycles = Machine.run m program in
    assert (
      Kernels.read_fir_outputs m layout ~samples
      = Kernels.reference_fir ~taps ~samples ~coeffs ~xs ~width:16);
    Printf.printf "  %-26s %3d instrs %5d cycles %8.1f nJ (dsp)
" name
      (List.length program) cycles
      (Energy_model.program_energy Energy_model.dsp_cpu (Machine.executed m))
  in
  Printf.printf "
Streaming 4-tap FIR over %d samples:
" samples;
  run "looped kernel" (Kernels.streaming_fir ~taps ~samples ());
  run "looped + pairing" (Kernels.streaming_fir ~taps ~samples ~pair:true ());
  run "fully unrolled" (Kernels.unrolled_fir ~taps ~samples);
  print_newline ();

  (* The paper's lesson in one sentence. *)
  print_endline
    "Paper V reproduced: the fastest code is the lowest-energy code; \
     register operands beat memory operands; instruction scheduling is \
     nearly free on the big core but worth ~8% on the DSP, and pairing \
     compacts the MAC loop further."
